//! The first-order constraint query evaluator.
//!
//! Section 4.1 of the paper: a formula `φ` in `L ∪ σ` with free variables `x₁,…,xₙ`
//! defines the query `{(x₁,…,xₙ) | φ}`.  Evaluation is *bottom-up and closed-form*:
//! the result is again a finitely representable relation, so queries compose, and
//! data complexity is polynomial for a fixed query (Theorem 5.2 states the sharper
//! AC⁰ bound).
//!
//! Two evaluators are provided:
//!
//! * the **relational-algebra evaluator** ([`eval_query`], [`CompiledQuery`]) —
//!   the default.  The formula is compiled once into a small plan IR
//!   (scan / rename / select / natural-join / union / complement /
//!   project-via-eliminate), **hash-consed** so structurally equal sub-formulas
//!   become the *same* plan node, and evaluated compositionally over
//!   [`Relation`] values with a per-query memo table — a repeated sub-plan is
//!   evaluated once per instance.  Joins prune candidate tuple pairs through
//!   the cached canonical contexts ([`crate::theory::Theory::ctx_compatible`])
//!   before any merged context is saturated.
//!
//! * the **expand-then-eliminate baseline** ([`eval_query_expand`]) — the
//!   literal transcription of Section 4.1: every relation atom is textually
//!   replaced by a DNF sub-formula ([`expand_relations`]) and the resulting
//!   `L`-formula is flattened by quantifier elimination.  Retained as the
//!   semantics baseline (the equivalence property tests pin the two evaluators
//!   against each other) and as the benchmark anchor for the algebraic
//!   evaluator's speedups.
//!
//! Compiled plans pass through the **cost-guided optimizer** ([`optimize`]):
//! joins are flattened and greedily re-ordered on estimated intermediate
//! cardinality (driven by [`stats::Statistics`] snapshots of the instance),
//! selections are placed at their earliest applicable fold position, and
//! complements push through leaf unions — all while preserving hash-consing,
//! so memoization still fires across shared sub-plans.  [`compile_query`]
//! optimizes with uniform defaults; [`CompiledQuery::optimized_for`]
//! re-optimizes against a concrete instance's statistics, and
//! [`CompiledQuery::eval_explained`] additionally returns an [`Explain`] tree
//! annotating every node with its estimated and actual cardinality.  A
//! [`PlanConfig`] also carries the evaluator's worker-thread count: joins and
//! projections over large relations partition their tuples across a
//! `std::thread::scope` pool, bit-identically to the serial path.

pub mod cache;
pub mod explain;
pub mod optimize;
pub mod stats;
pub mod trace;

pub use cache::{next_generation, PlanCache, PlanCacheStats};
pub use explain::Explain;
pub use optimize::{OptLevel, PlanConfig};
pub use stats::{ColumnStats, RelationStats, Statistics};
pub use trace::{QueryTrace, TimedTrace};

use trace::TraceProbe;

use crate::logic::{Formula, Term, Var};
use crate::relation::{
    eliminate_tuple, negate_tuples, simplify_tuples, GenTuple, Instance, JoinReport, Relation,
};
use crate::schema::RelName;
use crate::theory::{Atom, Dnf, Theory};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Errors raised during query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The formula mentions a relation symbol not declared by the instance's schema.
    UnknownRelation(String),
    /// A relation atom's argument count disagrees with the relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity expected by the stored relation.
        expected: usize,
        /// Number of arguments in the atom.
        found: usize,
    },
    /// The formula has a free variable missing from the requested answer-variable
    /// list, so `{free | formula}` is not a well-formed query (Section 4.1 requires
    /// the answer variables to cover the formula's free variables).  Evaluating
    /// anyway used to build a relation whose tuples mention non-column variables —
    /// ill-formed, and a later membership test would panic.
    FreeVariableNotListed {
        /// The uncovered free variable.
        variable: String,
    },
    /// The requested answer-variable list repeats a variable; the answer
    /// relation's columns must be distinct (point substitution binds a
    /// repeated column only once, so membership answers would be wrong).
    DuplicateAnswerVariable {
        /// The repeated variable.
        variable: String,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownRelation(r) => write!(f, "unknown relation symbol {r}"),
            EvalError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation {relation} expects {expected} arguments but the atom has {found}"
            ),
            EvalError::FreeVariableNotListed { variable } => write!(
                f,
                "free variable {variable} of the formula is not among the query's answer variables"
            ),
            EvalError::DuplicateAnswerVariable { variable } => {
                write!(f, "answer variable {variable} is listed more than once")
            }
        }
    }
}

impl std::error::Error for EvalError {}

// ---------------------------------------------------------------------------
// The expand-then-eliminate baseline (Section 4.1 verbatim)
// ---------------------------------------------------------------------------

/// Replaces every relation atom `R(t̅)` by a quantifier-free formula representing
/// `I(R)(t̅)` (the first step of Section 4.1's evaluation).
///
/// The stored relation's column variables are renamed apart before substituting the
/// atom's argument terms, so variable capture cannot occur (the fresh names live in
/// the reserved `#` namespace, which [`Var::new`] refuses to user code).
pub fn expand_relations<T: Theory>(
    formula: &Formula<T::A>,
    instance: &Instance<T>,
    counter: &mut usize,
) -> Result<Formula<T::A>, EvalError> {
    Ok(match formula {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => Formula::Atom(a.clone()),
        Formula::Rel { name, args } => {
            let rel = instance
                .get(name)
                .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?;
            if rel.arity() != args.len() {
                return Err(EvalError::ArityMismatch {
                    relation: name.to_string(),
                    expected: rel.arity(),
                    found: args.len(),
                });
            }
            // Rename the relation's columns to fresh variables, then substitute the
            // atom's arguments for them (one simultaneous pass per step).
            let fresh: Vec<Var> = rel.vars().iter().map(|_| Var::fresh(counter)).collect();
            let renamed = rel.rename(fresh.clone());
            let subst: std::collections::HashMap<Var, crate::logic::Term> =
                fresh.iter().cloned().zip(args.iter().cloned()).collect();
            let dnf: Dnf<T::A> = renamed
                .tuples()
                .iter()
                .map(|tuple| {
                    tuple
                        .atoms()
                        .iter()
                        .map(|a| a.subst_simultaneous(&subst))
                        .collect()
                })
                .collect();
            Formula::Or(
                dnf.into_iter()
                    .map(|conj| Formula::And(conj.into_iter().map(Formula::Atom).collect()))
                    .collect(),
            )
        }
        Formula::Not(g) => Formula::Not(Box::new(expand_relations(g, instance, counter)?)),
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| expand_relations(g, instance, counter))
                .collect::<Result<_, _>>()?,
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| expand_relations(g, instance, counter))
                .collect::<Result<_, _>>()?,
        ),
        Formula::Exists(vs, g) => Formula::Exists(
            vs.clone(),
            Box::new(expand_relations(g, instance, counter)?),
        ),
        Formula::Forall(vs, g) => Formula::Forall(
            vs.clone(),
            Box::new(expand_relations(g, instance, counter)?),
        ),
    })
}

/// Evaluates a relation-free formula to an equivalent quantifier-free
/// disjunction of cache-carrying generalized tuples via quantifier
/// elimination.  Every tuple created here carries its canonical context, so
/// the satisfiability pruning, the per-step simplification and the final
/// relation construction share one closure per conjunction.
fn eval_formula<T: Theory>(formula: &Formula<T::A>) -> Vec<GenTuple<T::A>> {
    match formula {
        Formula::True => vec![GenTuple::universal()],
        Formula::False => Vec::new(),
        Formula::Atom(a) => vec![GenTuple::new(vec![a.clone()])],
        Formula::Rel { .. } => {
            unreachable!("relation atoms must be expanded before evaluation")
        }
        Formula::Not(g) => {
            let inner = eval_formula::<T>(g);
            negate_tuples::<T>(&inner)
        }
        Formula::And(fs) => {
            let mut acc: Vec<GenTuple<T::A>> = vec![GenTuple::universal()];
            for g in fs {
                let rhs = eval_formula::<T>(g);
                let mut next: Vec<GenTuple<T::A>> = Vec::new();
                for a in &acc {
                    for b in &rhs {
                        let mut atoms = a.atoms().to_vec();
                        atoms.extend(b.atoms().iter().cloned());
                        let candidate = GenTuple::new(atoms);
                        if candidate.is_satisfiable::<T>() {
                            next.push(candidate);
                        }
                    }
                }
                acc = simplify_tuples::<T>(next);
                if acc.is_empty() {
                    return Vec::new();
                }
            }
            acc
        }
        Formula::Or(fs) => {
            let mut acc: Vec<GenTuple<T::A>> = Vec::new();
            for g in fs {
                acc.extend(eval_formula::<T>(g));
            }
            simplify_tuples::<T>(acc)
        }
        Formula::Exists(vs, g) => {
            let inner = eval_formula::<T>(g);
            let mut out: Vec<GenTuple<T::A>> = Vec::new();
            for tuple in &inner {
                out.extend(eliminate_tuple::<T>(vs, tuple));
            }
            simplify_tuples::<T>(out)
        }
        Formula::Forall(vs, g) => {
            // ∀x̅.φ  ≡  ¬∃x̅.¬φ
            let inner = eval_formula::<T>(g);
            let negated = negate_tuples::<T>(&inner);
            let mut exists: Vec<GenTuple<T::A>> = Vec::new();
            for tuple in &negated {
                exists.extend(eliminate_tuple::<T>(vs, tuple));
            }
            let exists = simplify_tuples::<T>(exists);
            negate_tuples::<T>(&exists)
        }
    }
}

/// Evaluates a query with the **expand-then-eliminate baseline**: relation
/// atoms are textually inlined as DNF sub-formulas and the result is flattened
/// by quantifier elimination, exactly as written in Section 4.1.
///
/// The algebraic evaluator ([`eval_query`]) computes the same relation; this
/// path is retained as the semantics baseline and benchmark anchor.
///
/// # Errors
/// Returns an error if the formula mentions undeclared relations or uses them with the
/// wrong arity.
pub fn eval_query_expand<T: Theory>(
    formula: &Formula<T::A>,
    free: &[Var],
    instance: &Instance<T>,
) -> Result<Relation<T>, EvalError> {
    check_free_covered(formula, free)?;
    let mut counter = 0usize;
    let expanded = expand_relations(formula, instance, &mut counter)?;
    let tuples = eval_formula::<T>(&expanded);
    Ok(Relation::new(free.to_vec(), tuples))
}

/// Checks that the answer-variable list is duplicate-free and covers every
/// free variable of the formula (the well-formedness conditions of Section
/// 4.1's query definition).
fn check_free_covered<A: Atom>(formula: &Formula<A>, free: &[Var]) -> Result<(), EvalError> {
    if let Some(v) = duplicate_answer_var(free) {
        return Err(EvalError::DuplicateAnswerVariable {
            variable: v.to_string(),
        });
    }
    match formula.free_vars().into_iter().find(|v| !free.contains(v)) {
        None => Ok(()),
        Some(v) => Err(EvalError::FreeVariableNotListed {
            variable: v.to_string(),
        }),
    }
}

/// The first variable repeated in an answer-variable list, if any.
fn duplicate_answer_var(free: &[Var]) -> Option<&Var> {
    free.iter()
        .enumerate()
        .find(|(i, v)| free[..*i].contains(v))
        .map(|(_, v)| v)
}

/// Evaluates a Boolean query (sentence) with the expand-then-eliminate
/// baseline; see [`eval_query_expand`].
///
/// # Errors
/// As for [`eval_query_expand`].
pub fn eval_sentence_expand<T: Theory>(
    formula: &Formula<T::A>,
    instance: &Instance<T>,
) -> Result<bool, EvalError> {
    let answer = eval_query_expand(formula, &[], instance)?;
    Ok(!answer.is_empty())
}

// ---------------------------------------------------------------------------
// The relational-algebra plan IR
// ---------------------------------------------------------------------------

/// A node of the relational-algebra plan IR.
///
/// Every node denotes a finitely representable relation over its column list
/// under *cylinder semantics*: a generalized tuple constrains only the
/// variables it mentions and is universal in every other variable, so union
/// branches and join operands over different column sets compose without
/// explicit padding, and complement is complement over all of `Qᵏ`.
enum PlanNode<T: Theory> {
    /// The empty relation (`false`).
    Empty,
    /// The universal relation (`true`).
    Universal,
    /// A conjunction of constraint atoms (selection from the universal
    /// relation).
    Select(Vec<T::A>),
    /// A stored relation read with its columns renamed to distinct argument
    /// variables — the fused scan + rename of the common case `R(x̅)`, which
    /// evaluates through [`Relation::rename`]'s single simultaneous pass (and
    /// shares the stored tuple caches when the renaming is the identity).
    Rename {
        /// The relation name.
        name: RelName,
        /// The distinct column variables after renaming.
        to: Vec<Var>,
    },
    /// A stored relation read under a general argument list (repeated
    /// variables and constants allowed): column variables are substituted by
    /// the argument terms, and unsatisfiable tuples are pruned — scan fused
    /// with the induced selection.
    Scan {
        /// The relation name.
        name: RelName,
        /// The argument terms of the relation atom.
        args: Vec<Term>,
    },
    /// Natural join of the children (conjunction).
    Join(Vec<Plan<T>>),
    /// Union of the children (disjunction).
    Union(Vec<Plan<T>>),
    /// Complement of the child within `Qᵏ` (negation).
    Complement(Plan<T>),
    /// Projection of the child **out of** the listed variables via quantifier
    /// elimination (existential quantification).
    Project {
        /// The child plan.
        input: Plan<T>,
        /// The variables eliminated.
        eliminate: Vec<Var>,
    },
}

struct PlanInner<T: Theory> {
    node: PlanNode<T>,
    /// Output columns: the free variables of the denoted sub-formula (after
    /// compile-time simplification).
    cols: Vec<Var>,
    /// Structural hash, precomputed at interning time; children contribute
    /// their own cached hashes, so hashing any node is O(local fields).
    hash: u64,
}

/// A hash-consed relational-algebra plan.
///
/// Plans are immutable and shared: the compiler interns every node, so
/// structurally equal sub-formulas of one query become the *same* (pointer
/// equal) plan node, and the evaluator's memo table then evaluates each
/// distinct sub-plan once per instance.  Equality and hashing are structural
/// (with a pointer fast path and the cached hash).
pub struct Plan<T: Theory>(Arc<PlanInner<T>>);

impl<T: Theory> Clone for Plan<T> {
    fn clone(&self) -> Self {
        Plan(Arc::clone(&self.0))
    }
}

impl<T: Theory> Plan<T> {
    /// The output columns of the plan: the free variables of the compiled
    /// (simplified) sub-formula.
    #[must_use]
    pub fn cols(&self) -> &[Var] {
        &self.0.cols
    }

    /// Number of distinct nodes in the plan DAG (shared nodes counted once) —
    /// the unit of the evaluator's memoization.
    #[must_use]
    pub fn node_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.count_nodes(&mut seen);
        seen.len()
    }

    fn count_nodes(&self, seen: &mut std::collections::HashSet<usize>) {
        if !seen.insert(Arc::as_ptr(&self.0) as usize) {
            return;
        }
        match &self.0.node {
            PlanNode::Empty
            | PlanNode::Universal
            | PlanNode::Select(_)
            | PlanNode::Rename { .. }
            | PlanNode::Scan { .. } => {}
            PlanNode::Join(children) | PlanNode::Union(children) => {
                for c in children {
                    c.count_nodes(seen);
                }
            }
            PlanNode::Complement(p) => p.count_nodes(seen),
            PlanNode::Project { input, .. } => input.count_nodes(seen),
        }
    }

    fn ptr_eq(&self, other: &Plan<T>) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<T: Theory> PartialEq for Plan<T> {
    fn eq(&self, other: &Self) -> bool {
        if self.ptr_eq(other) {
            return true;
        }
        if self.0.hash != other.0.hash {
            return false;
        }
        node_eq(&self.0.node, &other.0.node)
    }
}

impl<T: Theory> Eq for Plan<T> {}

impl<T: Theory> Hash for Plan<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

fn node_eq<T: Theory>(a: &PlanNode<T>, b: &PlanNode<T>) -> bool {
    match (a, b) {
        (PlanNode::Empty, PlanNode::Empty) | (PlanNode::Universal, PlanNode::Universal) => true,
        (PlanNode::Select(x), PlanNode::Select(y)) => x == y,
        (PlanNode::Rename { name: n1, to: t1 }, PlanNode::Rename { name: n2, to: t2 }) => {
            n1 == n2 && t1 == t2
        }
        (PlanNode::Scan { name: n1, args: a1 }, PlanNode::Scan { name: n2, args: a2 }) => {
            n1 == n2 && a1 == a2
        }
        (PlanNode::Join(x), PlanNode::Join(y)) | (PlanNode::Union(x), PlanNode::Union(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p == q)
        }
        (PlanNode::Complement(x), PlanNode::Complement(y)) => x == y,
        (
            PlanNode::Project {
                input: i1,
                eliminate: e1,
            },
            PlanNode::Project {
                input: i2,
                eliminate: e2,
            },
        ) => e1 == e2 && i1 == i2,
        _ => false,
    }
}

fn node_hash<T: Theory>(node: &PlanNode<T>) -> u64 {
    let mut h = DefaultHasher::new();
    match node {
        PlanNode::Empty => h.write_u8(0),
        PlanNode::Universal => h.write_u8(1),
        PlanNode::Select(atoms) => {
            h.write_u8(2);
            for a in atoms {
                a.hash(&mut h);
            }
        }
        PlanNode::Rename { name, to } => {
            h.write_u8(3);
            name.hash(&mut h);
            to.hash(&mut h);
        }
        PlanNode::Scan { name, args } => {
            h.write_u8(4);
            name.hash(&mut h);
            args.hash(&mut h);
        }
        PlanNode::Join(children) => {
            h.write_u8(5);
            for c in children {
                h.write_u64(c.0.hash);
            }
        }
        PlanNode::Union(children) => {
            h.write_u8(6);
            for c in children {
                h.write_u64(c.0.hash);
            }
        }
        PlanNode::Complement(p) => {
            h.write_u8(7);
            h.write_u64(p.0.hash);
        }
        PlanNode::Project { input, eliminate } => {
            h.write_u8(8);
            h.write_u64(input.0.hash);
            eliminate.hash(&mut h);
        }
    }
    h.finish()
}

impl<T: Theory> fmt::Display for Plan<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0.node {
            PlanNode::Empty => write!(f, "⊥"),
            PlanNode::Universal => write!(f, "⊤"),
            PlanNode::Select(atoms) => {
                write!(f, "σ[")?;
                for (i, a) in atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            PlanNode::Rename { name, to } => {
                write!(f, "{name}(")?;
                for (i, v) in to.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            PlanNode::Scan { name, args } => {
                write!(f, "scan {name}(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            PlanNode::Join(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⋈ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            PlanNode::Union(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∪ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            PlanNode::Complement(p) => write!(f, "¬{p}"),
            PlanNode::Project { input, eliminate } => {
                write!(f, "π-{{")?;
                for (i, v) in eliminate.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}{input}")
            }
        }
    }
}

impl<T: Theory> fmt::Debug for Plan<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Plan({self})")
    }
}

// ---------------------------------------------------------------------------
// Compilation (with hash-consing)
// ---------------------------------------------------------------------------

/// The hash-consing plan builder: structurally equal nodes constructed during
/// one compilation are interned to a single shared [`Plan`], so the evaluator
/// can memoize by node identity.
struct PlanBuilder<T: Theory> {
    interned: HashMap<u64, Vec<Plan<T>>>,
}

impl<T: Theory> PlanBuilder<T> {
    fn new() -> Self {
        PlanBuilder {
            interned: HashMap::new(),
        }
    }

    fn intern(&mut self, node: PlanNode<T>, cols: Vec<Var>) -> Plan<T> {
        let hash = node_hash(&node);
        let bucket = self.interned.entry(hash).or_default();
        for existing in bucket.iter() {
            if node_eq(&existing.0.node, &node) {
                return existing.clone();
            }
        }
        let plan = Plan(Arc::new(PlanInner { node, cols, hash }));
        bucket.push(plan.clone());
        plan
    }

    fn empty(&mut self, cols: Vec<Var>) -> Plan<T> {
        self.intern(PlanNode::Empty, cols)
    }

    fn universal(&mut self, cols: Vec<Var>) -> Plan<T> {
        self.intern(PlanNode::Universal, cols)
    }

    fn select(&mut self, atoms: Vec<T::A>) -> Plan<T> {
        let cols: Vec<Var> = atoms
            .iter()
            .flat_map(Atom::vars)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        self.intern(PlanNode::Select(atoms), cols)
    }

    /// `¬p`, with double negation and the trivial complements folded away.
    fn complement_of(&mut self, p: Plan<T>) -> Plan<T> {
        let cols = p.cols().to_vec();
        match &p.0.node {
            PlanNode::Complement(inner) => inner.clone(),
            PlanNode::Empty => self.universal(cols),
            PlanNode::Universal => self.empty(cols),
            _ => self.intern(PlanNode::Complement(p), cols),
        }
    }

    /// `∃ vs . p`, restricted to the variables actually among `p`'s columns;
    /// nested projections are merged into a single elimination list.
    fn project_of(&mut self, p: Plan<T>, vs: &[Var]) -> Plan<T> {
        let mut eliminate: Vec<Var> = Vec::new();
        for v in vs {
            if p.cols().contains(v) && !eliminate.contains(v) {
                eliminate.push(v.clone());
            }
        }
        if eliminate.is_empty() {
            return p;
        }
        let (input, eliminate) = match &p.0.node {
            PlanNode::Project {
                input,
                eliminate: inner,
            } => {
                let mut merged = inner.clone();
                merged.extend(eliminate);
                (input.clone(), merged)
            }
            _ => (p.clone(), eliminate),
        };
        let cols: Vec<Var> = input
            .cols()
            .iter()
            .filter(|v| !eliminate.contains(v))
            .cloned()
            .collect();
        match &input.0.node {
            // Projection cannot revive an empty relation or constrain a
            // universal one.
            PlanNode::Empty => self.empty(cols),
            PlanNode::Universal => self.universal(cols),
            _ => self.intern(PlanNode::Project { input, eliminate }, cols),
        }
    }

    /// Natural join of the children: nested joins are flattened, `⊤` operands
    /// and duplicates dropped, selections merged, and `⊥` annihilates.
    fn join_of(&mut self, children: Vec<Plan<T>>) -> Plan<T> {
        let mut flat: Vec<Plan<T>> = Vec::new();
        for c in children {
            match &c.0.node {
                PlanNode::Join(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(c),
            }
        }
        let all_cols = union_cols(&flat);
        if flat.iter().any(|c| matches!(c.0.node, PlanNode::Empty)) {
            return self.empty(all_cols);
        }
        let mut atoms: Vec<T::A> = Vec::new();
        let mut kept: Vec<Plan<T>> = Vec::new();
        for c in flat {
            match &c.0.node {
                PlanNode::Universal => {}
                PlanNode::Select(sel) => {
                    for a in sel {
                        if !atoms.contains(a) {
                            atoms.push(a.clone());
                        }
                    }
                }
                _ => {
                    if !kept.iter().any(|k| k.ptr_eq(&c)) {
                        kept.push(c);
                    }
                }
            }
        }
        if !atoms.is_empty() {
            // A single merged selection, placed first so the join prunes early.
            kept.insert(0, self.select(atoms));
        }
        match kept.len() {
            0 => self.universal(all_cols),
            1 => kept.pop().expect("length checked"),
            _ => {
                let cols = union_cols(&kept);
                self.intern(PlanNode::Join(kept), cols)
            }
        }
    }

    /// Union of the children: nested unions are flattened, `⊥` operands and
    /// duplicates dropped, and `⊤` annihilates.
    fn union_of(&mut self, children: Vec<Plan<T>>) -> Plan<T> {
        let mut flat: Vec<Plan<T>> = Vec::new();
        for c in children {
            match &c.0.node {
                PlanNode::Union(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(c),
            }
        }
        let all_cols = union_cols(&flat);
        if flat.iter().any(|c| matches!(c.0.node, PlanNode::Universal)) {
            return self.universal(all_cols);
        }
        let mut kept: Vec<Plan<T>> = Vec::new();
        for c in flat {
            match &c.0.node {
                PlanNode::Empty => {}
                _ => {
                    if !kept.iter().any(|k| k.ptr_eq(&c)) {
                        kept.push(c);
                    }
                }
            }
        }
        match kept.len() {
            0 => self.empty(all_cols),
            1 => kept.pop().expect("length checked"),
            _ => {
                let cols = union_cols(&kept);
                self.intern(PlanNode::Union(kept), cols)
            }
        }
    }

    fn compile(&mut self, formula: &Formula<T::A>) -> Plan<T> {
        match formula {
            Formula::True => self.universal(Vec::new()),
            Formula::False => self.empty(Vec::new()),
            Formula::Atom(a) => self.select(vec![a.clone()]),
            Formula::Rel { name, args } => {
                let arg_vars: Vec<Var> = args.iter().filter_map(Term::as_var).cloned().collect();
                let distinct = arg_vars.len() == args.len() && {
                    let mut seen = std::collections::HashSet::new();
                    arg_vars.iter().all(|v| seen.insert(v.clone()))
                };
                if distinct {
                    self.intern(
                        PlanNode::Rename {
                            name: name.clone(),
                            to: arg_vars.clone(),
                        },
                        arg_vars,
                    )
                } else {
                    let mut cols: Vec<Var> = Vec::new();
                    for v in &arg_vars {
                        if !cols.contains(v) {
                            cols.push(v.clone());
                        }
                    }
                    self.intern(
                        PlanNode::Scan {
                            name: name.clone(),
                            args: args.clone(),
                        },
                        cols,
                    )
                }
            }
            Formula::Not(g) => {
                let inner = self.compile(g);
                self.complement_of(inner)
            }
            Formula::And(fs) => {
                let children: Vec<Plan<T>> = fs.iter().map(|g| self.compile(g)).collect();
                self.join_of(children)
            }
            Formula::Or(fs) => {
                let children: Vec<Plan<T>> = fs.iter().map(|g| self.compile(g)).collect();
                self.union_of(children)
            }
            Formula::Exists(vs, g) => {
                let inner = self.compile(g);
                self.project_of(inner, vs)
            }
            Formula::Forall(vs, g) => {
                // ∀x̅.φ  ≡  ¬∃x̅.¬φ
                let inner = self.compile(g);
                let negated = self.complement_of(inner);
                let projected = self.project_of(negated, vs);
                self.complement_of(projected)
            }
        }
    }
}

/// The union of the children's column lists, in first-occurrence order.
fn union_cols<T: Theory>(children: &[Plan<T>]) -> Vec<Var> {
    let mut cols: Vec<Var> = Vec::new();
    for c in children {
        for v in c.cols() {
            if !cols.contains(v) {
                cols.push(v.clone());
            }
        }
    }
    cols
}

fn collect_rel_atoms<A>(formula: &Formula<A>, out: &mut Vec<(RelName, usize)>) {
    match formula {
        Formula::True | Formula::False | Formula::Atom(_) => {}
        Formula::Rel { name, args } => {
            if !out.iter().any(|(n, a)| n == name && *a == args.len()) {
                out.push((name.clone(), args.len()));
            }
        }
        Formula::Not(g) => collect_rel_atoms(g, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for f in fs {
                collect_rel_atoms(f, out);
            }
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => collect_rel_atoms(g, out),
    }
}

/// A query compiled once into a (hash-consed) relational-algebra plan,
/// reusable across instances — the Datalog engine compiles every rule body a
/// single time and re-evaluates the plan each fixpoint round.
pub struct CompiledQuery<T: Theory> {
    plan: Plan<T>,
    free: Vec<Var>,
    /// The configuration the query was compiled with (optimization level and
    /// evaluator thread count).
    config: PlanConfig,
    /// Relation atoms of the source formula in traversal order, for upfront
    /// schema validation (matching the error behavior of the expand baseline,
    /// which validates every atom before evaluating anything).
    rels: Vec<(RelName, usize)>,
    /// Free variables of the source formula missing from `free` — recorded at
    /// compile time, reported as a typed error on evaluation (a query whose
    /// answer variables do not cover the formula is ill-formed, and evaluating
    /// it would build relations whose tuples mention non-column variables).
    uncovered: Vec<Var>,
    /// A variable repeated in `free`, recorded at compile time and reported
    /// as a typed error on evaluation (answer columns must be distinct).
    dup_free: Option<Var>,
}

impl<T: Theory> Clone for CompiledQuery<T> {
    fn clone(&self) -> Self {
        CompiledQuery {
            plan: self.plan.clone(),
            free: self.free.clone(),
            config: self.config,
            rels: self.rels.clone(),
            uncovered: self.uncovered.clone(),
            dup_free: self.dup_free.clone(),
        }
    }
}

impl<T: Theory> fmt::Debug for CompiledQuery<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompiledQuery({})", self.plan)
    }
}

/// Compiles a query `{free | formula}` into a reusable plan with the default
/// configuration: cost-guided optimization against uniform statistics, serial
/// evaluation.
///
/// # Examples
/// ```
/// use frdb_core::prelude::*;
/// use frdb_core::fo::compile_query;
///
/// // Compile {x | ∃y. S(x, y)} once, evaluate it on an instance.
/// let q: Formula<DenseAtom> =
///     Formula::exists(["y"], Formula::rel("S", [Term::var("x"), Term::var("y")]));
/// let compiled = compile_query::<DenseOrder>(&q, &[Var::new("x")]);
///
/// let mut inst: Instance<DenseOrder> = Instance::new(Schema::from_pairs([("S", 2)]));
/// inst.set(
///     "S",
///     Relation::from_points(
///         vec![Var::new("x"), Var::new("y")],
///         vec![vec![Rat::from_i64(1), Rat::from_i64(2)]],
///     ),
/// )
/// .unwrap();
/// let answer = compiled.eval(&inst).unwrap();
/// assert!(answer.contains(&[Rat::from_i64(1)]));
/// ```
#[must_use]
pub fn compile_query<T: Theory>(formula: &Formula<T::A>, free: &[Var]) -> CompiledQuery<T> {
    compile_query_with(formula, free, &PlanConfig::default())
}

/// Compiles a query `{free | formula}` under an explicit [`PlanConfig`]:
/// [`OptLevel::None`] reproduces the syntactic-order plan exactly, and
/// `threads > 1` lets the evaluator partition large joins and projections
/// across a worker pool.
#[must_use]
pub fn compile_query_with<T: Theory>(
    formula: &Formula<T::A>,
    free: &[Var],
    config: &PlanConfig,
) -> CompiledQuery<T> {
    let mut builder = PlanBuilder::new();
    let plan = builder.compile(formula);
    let plan = match config.opt {
        OptLevel::None => plan,
        OptLevel::Full => optimize::optimize_plan(&plan, &Statistics::none(), &mut builder),
    };
    let mut rels = Vec::new();
    collect_rel_atoms(formula, &mut rels);
    let uncovered = formula
        .free_vars()
        .into_iter()
        .filter(|v| !free.contains(v))
        .collect();
    CompiledQuery {
        plan,
        free: free.to_vec(),
        config: *config,
        rels,
        uncovered,
        dup_free: duplicate_answer_var(free).cloned(),
    }
}

impl<T: Theory> CompiledQuery<T> {
    /// The compiled plan.
    #[must_use]
    pub fn plan(&self) -> &Plan<T> {
        &self.plan
    }

    /// The free (answer) variables.
    #[must_use]
    pub fn free(&self) -> &[Var] {
        &self.free
    }

    /// The configuration the query was compiled with.
    #[must_use]
    pub fn config(&self) -> &PlanConfig {
        &self.config
    }

    /// The relation symbols the source formula reads, with their arities —
    /// the right scope for a [`Statistics::collect_only`] snapshot when
    /// re-optimizing this query for an instance.
    #[must_use]
    pub fn relations(&self) -> &[(RelName, usize)] {
        &self.rels
    }

    /// The same query with the evaluator's worker-thread count replaced.
    /// Thread count never changes results — parallel joins and projections
    /// partition tuples and merge in order, bit-identically to serial
    /// evaluation.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Re-optimizes the compiled plan against a [`Statistics`] snapshot of a
    /// concrete instance (a no-op at [`OptLevel::None`]).  Re-optimization
    /// rewrites the existing plan — it does not need the source formula — and
    /// preserves hash-consing, so the rewritten plan memoizes exactly like
    /// the original.
    #[must_use]
    pub fn optimized_for(&self, statistics: &Statistics) -> CompiledQuery<T> {
        match self.config.opt {
            OptLevel::None => self.clone(),
            OptLevel::Full => {
                let mut builder = PlanBuilder::new();
                let plan = optimize::optimize_plan(&self.plan, statistics, &mut builder);
                CompiledQuery {
                    plan,
                    ..self.clone()
                }
            }
        }
    }

    /// Evaluates the plan on an instance, producing the answer relation over
    /// the compiled free-variable list.  Sub-plans are memoized per call, so
    /// every distinct node of the plan DAG is evaluated exactly once.
    ///
    /// # Errors
    /// Returns an error if the formula mentions undeclared relations or uses
    /// them with the wrong arity.
    ///
    /// # Examples
    /// ```
    /// use frdb_core::prelude::*;
    /// use frdb_core::fo::compile_query;
    ///
    /// let mut inst: Instance<DenseOrder> = Instance::new(Schema::from_pairs([("R", 1)]));
    /// inst.set(
    ///     "R",
    ///     Relation::from_points(vec![Var::new("x")], vec![vec![Rat::from_i64(3)]]),
    /// )
    /// .unwrap();
    /// // {x | R(x) ∧ x ≤ 5}
    /// let q: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")])
    ///     .and(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(5))));
    /// let answer = compile_query::<DenseOrder>(&q, &[Var::new("x")])
    ///     .eval(&inst)
    ///     .unwrap();
    /// assert!(answer.contains(&[Rat::from_i64(3)]));
    /// ```
    pub fn eval(&self, instance: &Instance<T>) -> Result<Relation<T>, EvalError> {
        let mut memo: HashMap<usize, Factored<T>> = HashMap::new();
        let mut reports: HashMap<usize, JoinReport> = HashMap::new();
        self.eval_with_memo(instance, &mut memo, &mut reports, &mut TraceProbe::Off)
    }

    /// Evaluates the plan *and* returns the [`QueryTrace`] span tree: per
    /// plan node, the output cardinality and factorized part count, the join
    /// strategy with its candidate-pair pruning ratio, the column-index
    /// builds/reuses the node's own joins performed, and the inclusive wall
    /// time.  The trace's default rendering is deterministic at any thread
    /// count; wall times surface only through [`QueryTrace::timed`].
    ///
    /// # Errors
    /// As for [`CompiledQuery::eval`].
    pub fn eval_traced(
        &self,
        instance: &Instance<T>,
    ) -> Result<(Relation<T>, QueryTrace), EvalError> {
        let mut memo: HashMap<usize, Factored<T>> = HashMap::new();
        let mut reports: HashMap<usize, JoinReport> = HashMap::new();
        let mut probe = TraceProbe::On(trace::TraceData::default());
        let start = std::time::Instant::now();
        let answer = self.eval_with_memo(instance, &mut memo, &mut reports, &mut probe)?;
        let total = start.elapsed();
        let TraceProbe::On(data) = probe else {
            unreachable!("probe constructed on");
        };
        let trace = QueryTrace::build(
            &self.plan,
            &memo,
            &reports,
            &data,
            self.config.threads,
            total,
        );
        Ok((answer, trace))
    }

    /// Evaluates the plan *and* returns the [`Explain`] tree: the operator
    /// tree annotated, per node, with the cost model's estimated cardinality
    /// (under statistics collected from `instance`) and the actual
    /// generalized-tuple count the evaluator materialized.  The rendering is
    /// deterministic, so transcripts can be pinned by golden tests.
    ///
    /// # Errors
    /// As for [`CompiledQuery::eval`].
    pub fn eval_explained(
        &self,
        instance: &Instance<T>,
    ) -> Result<(Relation<T>, Explain), EvalError> {
        let mut memo: HashMap<usize, Factored<T>> = HashMap::new();
        let mut reports: HashMap<usize, JoinReport> = HashMap::new();
        let answer =
            self.eval_with_memo(instance, &mut memo, &mut reports, &mut TraceProbe::Off)?;
        let statistics = Statistics::collect_only(instance, self.rels.iter().map(|(n, _)| n));
        let explain = Explain::build(&self.plan, &statistics, &memo, &reports);
        Ok((answer, explain))
    }

    fn eval_with_memo(
        &self,
        instance: &Instance<T>,
        memo: &mut HashMap<usize, Factored<T>>,
        reports: &mut HashMap<usize, JoinReport>,
        probe: &mut TraceProbe,
    ) -> Result<Relation<T>, EvalError> {
        if let Some(v) = &self.dup_free {
            return Err(EvalError::DuplicateAnswerVariable {
                variable: v.to_string(),
            });
        }
        if let Some(v) = self.uncovered.first() {
            return Err(EvalError::FreeVariableNotListed {
                variable: v.to_string(),
            });
        }
        // Validate every relation atom upfront (compile-time simplification
        // may have pruned some from the plan; the source formula's errors must
        // surface regardless, as they do in the expand baseline).
        for (name, arity) in &self.rels {
            fetch(instance, name, *arity)?;
        }
        let answer = eval_plan(&self.plan, instance, memo, reports, self.config, probe)?.merged();
        // Deferred absorption means the factorized evaluator can discover
        // the final tuples in a different order than the eager one; the plan
        // boundary sorts canonically so answers are bit-identical across
        // factorization modes and thread counts.
        let answer = answer.canonically_sorted();
        // The plan result is already canonical (every operator finishes in
        // `Relation::new`); when the requested free list covers its columns,
        // re-wrap without re-running simplification and absorption.
        if answer.vars().iter().all(|v| self.free.contains(v)) {
            Ok(answer.with_columns(self.free.clone()))
        } else {
            Ok(Relation::new(self.free.clone(), answer.tuples().to_vec()))
        }
    }
}

// ---------------------------------------------------------------------------
// Factorized intermediates
// ---------------------------------------------------------------------------

/// Cap on the number of parts a factorized intermediate may hold.  Beyond
/// this, deferred absorption stops paying for itself (every downstream join
/// distributes over the parts), so the evaluator merges back to a single
/// materialized part.  The optimizer's cost model mirrors the cap when
/// estimating part counts ([`optimize::Est`]).
pub(crate) const MAX_PARTS: usize = 16;

/// A factorized intermediate: a plan node's value held as a **lazy union of
/// parts** (each part a canonical [`Relation`] over the node's columns)
/// instead of one eagerly materialized DNF.  Union nodes concatenate their
/// children's parts without the quadratic cross-child absorption pass, joins
/// distribute over the parts pairwise (each pair still runs the indexed
/// pin-hash / index-sweep strategies), projection eliminates per part, and
/// complement intersects per-part complements.  Materialization to the exact
/// canonical DNF ([`Factored::merged`]) happens only at plan boundaries, so
/// answers stay bit-identical to the eager evaluator at any thread count.
pub(crate) struct Factored<T: Theory> {
    /// The node's column list; every part is normalized onto it.
    cols: Vec<Var>,
    /// The union's parts.  An empty list is the empty relation; a single
    /// part is exactly the materialized value.
    parts: Vec<Relation<T>>,
}

// Manual impl: `T` is a phantom theory tag, not data — no `T: Clone` bound.
impl<T: Theory> Clone for Factored<T> {
    fn clone(&self) -> Self {
        Factored {
            cols: self.cols.clone(),
            parts: self.parts.clone(),
        }
    }
}

impl<T: Theory> Factored<T> {
    /// Wraps an already-materialized relation as a single-part value.
    fn single(rel: Relation<T>) -> Factored<T> {
        Factored {
            cols: rel.vars().to_vec(),
            parts: vec![rel],
        }
    }

    /// The empty value over `cols`.
    fn empty(cols: Vec<Var>) -> Factored<T> {
        Factored {
            cols,
            parts: Vec::new(),
        }
    }

    /// Number of parts held (0 for the empty value).
    pub(crate) fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Total generalized tuples across the parts — what a full expansion
    /// would start from, and what `EXPLAIN` reports as the node's actual
    /// size.
    pub(crate) fn num_tuples(&self) -> usize {
        self.parts.iter().map(Relation::num_tuples).sum()
    }

    /// Materializes the exact canonical DNF: a single part is already
    /// canonical and is returned as-is (its column indexes survive); several
    /// parts are concatenated and run through the deferred simplification
    /// pass (cross-part dedup + absorption).
    fn merged(&self) -> Relation<T> {
        match self.parts.len() {
            0 => Relation::empty(self.cols.clone()),
            1 => self.parts[0].clone(),
            _ => Relation::simplified_unchecked(
                self.cols.clone(),
                self.parts
                    .iter()
                    .flat_map(|p| p.tuples().iter().cloned())
                    .collect(),
            ),
        }
    }

    /// Re-aligns every part onto `cols` (see [`Relation::with_columns`]).
    fn with_columns(self, cols: Vec<Var>) -> Factored<T> {
        let parts = self
            .parts
            .into_iter()
            .map(|p| {
                if p.vars() == cols.as_slice() {
                    p
                } else {
                    p.with_columns(cols.clone())
                }
            })
            .collect();
        Factored { cols, parts }
    }
}

/// Merges a non-empty uniform-column part list into one canonical relation
/// (the join fold's cap fallback).
fn merge_parts<T: Theory>(parts: Vec<Relation<T>>) -> Relation<T> {
    if parts.len() == 1 {
        return parts.into_iter().next().expect("len checked");
    }
    let vars = parts[0].vars().to_vec();
    Relation::simplified_unchecked(
        vars,
        parts
            .iter()
            .flat_map(|p| p.tuples().iter().cloned())
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Plan evaluation (memoized)
// ---------------------------------------------------------------------------

fn eval_plan<T: Theory>(
    plan: &Plan<T>,
    instance: &Instance<T>,
    memo: &mut HashMap<usize, Factored<T>>,
    reports: &mut HashMap<usize, JoinReport>,
    config: PlanConfig,
    probe: &mut TraceProbe,
) -> Result<Factored<T>, EvalError> {
    let key = Arc::as_ptr(&plan.0) as usize;
    if let Some(cached) = memo.get(&key) {
        return Ok(cached.clone());
    }
    // One branch when tracing is off — the no-op probe costs nothing per
    // node beyond this discriminant check.
    let span = probe.begin();
    let cols = plan.cols().to_vec();
    let threads = config.threads;
    let result = match &plan.0.node {
        PlanNode::Empty => Factored::single(Relation::empty(cols)),
        PlanNode::Universal => Factored::single(Relation::universal(cols)),
        PlanNode::Select(atoms) => Factored::single(Relation::simplified_unchecked(
            cols,
            vec![GenTuple::new(atoms.clone())],
        )),
        PlanNode::Rename { name, to } => {
            let rel = fetch(instance, name, to.len())?;
            Factored::single(rel.rename(to.clone()))
        }
        PlanNode::Scan { name, args } => {
            let rel = fetch(instance, name, args.len())?;
            let subst: HashMap<Var, Term> = rel
                .vars()
                .iter()
                .cloned()
                .zip(args.iter().cloned())
                .collect();
            let tuples = rel
                .tuples()
                .iter()
                .map(|tuple| {
                    GenTuple::new(
                        tuple
                            .atoms()
                            .iter()
                            .map(|a| a.subst_simultaneous(&subst))
                            .collect(),
                    )
                })
                .collect();
            Factored::single(Relation::simplified_unchecked(cols, tuples))
        }
        PlanNode::Join(children) => {
            let joined =
                eval_join_fold(children, &[], instance, memo, reports, key, config, probe)?;
            match joined {
                None => Factored::empty(cols),
                Some(f) => f.with_columns(cols),
            }
        }
        PlanNode::Union(children) => {
            // The factorized union: concatenate the children's parts and
            // defer cross-part dedup/absorption to the plan boundary (or the
            // cap).  Eager mode merges here, which is exactly the historical
            // behavior.
            let mut parts: Vec<Relation<T>> = Vec::new();
            for child in children {
                let f = eval_plan(child, instance, memo, reports, config, probe)?;
                for part in f.parts {
                    if part.is_empty() {
                        continue;
                    }
                    parts.push(if part.vars() == cols.as_slice() {
                        part
                    } else {
                        part.with_columns(cols.clone())
                    });
                }
            }
            let f = Factored { cols, parts };
            if config.factorize && f.parts.len() <= MAX_PARTS {
                f
            } else {
                Factored::single(f.merged())
            }
        }
        PlanNode::Complement(input) => {
            let f = eval_plan(input, instance, memo, reports, config, probe)?;
            if f.parts.is_empty() {
                // Complement of the empty relation — the universal negation
                // path of the eager evaluator.
                Factored::single(Relation::simplified_unchecked(
                    cols,
                    negate_tuples::<T>(&[]),
                ))
            } else {
                // ¬(P₁ ∨ … ∨ Pₖ) = ¬P₁ ⋈ … ⋈ ¬Pₖ: complement each part and
                // intersect, so a factorized union is negated without ever
                // materializing it.  For a single part this is exactly the
                // eager path.
                let mut acc: Option<Relation<T>> = None;
                for part in &f.parts {
                    let neg = Relation::simplified_unchecked(
                        cols.clone(),
                        negate_tuples::<T>(part.tuples()),
                    );
                    let next = match acc {
                        None => neg,
                        Some(prev) => prev.join_with(&neg, threads),
                    };
                    let empty = next.is_empty();
                    acc = Some(next);
                    if empty {
                        break;
                    }
                }
                let rel = acc.expect("parts checked non-empty");
                Factored::single(if rel.vars() == cols.as_slice() {
                    rel
                } else {
                    rel.with_columns(cols)
                })
            }
        }
        PlanNode::Project { input, eliminate } => {
            let f = if let PlanNode::Join(children) = &input.0.node {
                // Fused join + early projection (see `eval_join_fold`); the
                // join's report stays keyed on the fused join node.
                let join_key = Arc::as_ptr(&input.0) as usize;
                match eval_join_fold(
                    children, eliminate, instance, memo, reports, join_key, config, probe,
                )? {
                    None => {
                        probe.end(key, span);
                        return finish(memo, key, Factored::empty(cols));
                    }
                    Some(f) => f,
                }
            } else {
                eval_plan(input, instance, memo, reports, config, probe)?
            };
            // ∃ distributes over ∨: eliminate per part and defer the
            // cross-part absorption a merge would run.
            let parts: Vec<Relation<T>> = f
                .parts
                .iter()
                .map(|p| p.project_out_with(eliminate, threads))
                .filter(|p| !p.is_empty())
                .map(|p| {
                    if p.vars() == cols.as_slice() {
                        p
                    } else {
                        p.with_columns(cols.clone())
                    }
                })
                .collect();
            let f = Factored { cols, parts };
            if config.factorize && f.parts.len() <= MAX_PARTS {
                f
            } else {
                Factored::single(f.merged())
            }
        }
    };
    probe.end(key, span);
    finish(memo, key, result)
}

/// Folds a join's children left to right with **early projection**: a variable
/// from `eliminate` is projected out as soon as no remaining operand mentions
/// it (`∃y (φ ∧ ψ) = (∃y φ) ∧ ψ` when `y ∉ free(ψ)`), so intermediate results
/// collapse before they are multiplied further.  Returns `None` when the join
/// annihilates early — the remaining operands cannot revive it (their schema
/// errors were surfaced by the upfront validation).  Variables of `eliminate`
/// still present in the result are the caller's to project.
#[allow(clippy::too_many_arguments)]
fn eval_join_fold<T: Theory>(
    children: &[Plan<T>],
    eliminate: &[Var],
    instance: &Instance<T>,
    memo: &mut HashMap<usize, Factored<T>>,
    reports: &mut HashMap<usize, JoinReport>,
    report_key: usize,
    config: PlanConfig,
    probe: &mut TraceProbe,
) -> Result<Option<Factored<T>>, EvalError> {
    let threads = config.threads;
    // Aggregate the fold's pairwise join reports onto the join node, so
    // `EXPLAIN` shows the strategy and candidate-pair count even when the
    // join annihilated early or was fused into its parent projection.
    let mut report: Option<JoinReport> = None;
    let record = |reports: &mut HashMap<usize, JoinReport>, report: Option<JoinReport>| {
        if let Some(r) = report {
            reports.insert(report_key, r);
        }
    };
    let mut acc: Option<Vec<Relation<T>>> = None;
    for (i, child) in children.iter().enumerate() {
        let f = eval_plan(child, instance, memo, reports, config, probe)?;
        let child_cols = f.cols.clone();
        let next: Vec<Relation<T>> = f.parts.into_iter().filter(|p| !p.is_empty()).collect();
        let mut joined: Vec<Relation<T>> = match acc {
            None => next,
            Some(prev) => {
                if next.is_empty() {
                    // Joining with an empty operand annihilates; still run
                    // the (trivial) join so the strategy report matches the
                    // eager evaluator's.
                    let idx = probe.index_base();
                    let (_, step) =
                        merge_parts(prev).join_with_report(&Relation::empty(child_cols), threads);
                    probe.add_index_delta(report_key, idx);
                    match &mut report {
                        None => report = Some(step),
                        Some(r) => r.absorb(&step),
                    }
                    Vec::new()
                } else {
                    // The join distributes over parts: (A₁∨A₂) ⋈ (B₁∨B₂) =
                    // ∨ᵢⱼ (Aᵢ ⋈ Bⱼ), each pairwise join running the indexed
                    // strategies.  When the cross product would blow the part
                    // cap, merge the side holding more parts first.
                    let (lhs, rhs) = if prev.len() * next.len() > MAX_PARTS {
                        if prev.len() >= next.len() {
                            (vec![merge_parts(prev)], next)
                        } else {
                            (prev, vec![merge_parts(next)])
                        }
                    } else {
                        (prev, next)
                    };
                    let mut out = Vec::new();
                    for a in &lhs {
                        for b in &rhs {
                            let idx = probe.index_base();
                            let (j, step) = a.join_with_report(b, threads);
                            probe.add_index_delta(report_key, idx);
                            match &mut report {
                                None => report = Some(step),
                                Some(r) => r.absorb(&step),
                            }
                            if !j.is_empty() {
                                out.push(j);
                            }
                        }
                    }
                    out
                }
            }
        };
        let dead: Vec<Var> = eliminate
            .iter()
            .filter(|v| {
                joined.iter().any(|p| p.vars().contains(v))
                    && !children[i + 1..].iter().any(|c| c.cols().contains(v))
            })
            .cloned()
            .collect();
        if !dead.is_empty() {
            joined = joined
                .iter()
                .map(|p| p.project_out_with(&dead, threads))
                .filter(|p| !p.is_empty())
                .collect();
        }
        if joined.is_empty() {
            record(reports, report);
            return Ok(None);
        }
        acc = Some(joined);
    }
    record(reports, report);
    let parts = acc.expect("join nodes have at least two children");
    let cols = parts[0].vars().to_vec();
    Ok(Some(Factored { cols, parts }))
}

fn finish<T: Theory>(
    memo: &mut HashMap<usize, Factored<T>>,
    key: usize,
    result: Factored<T>,
) -> Result<Factored<T>, EvalError> {
    memo.insert(key, result.clone());
    Ok(result)
}

fn fetch<T: Theory>(
    instance: &Instance<T>,
    name: &RelName,
    arity: usize,
) -> Result<Relation<T>, EvalError> {
    let rel = instance
        .get(name)
        .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?;
    if rel.arity() != arity {
        return Err(EvalError::ArityMismatch {
            relation: name.to_string(),
            expected: rel.arity(),
            found: arity,
        });
    }
    Ok(rel)
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Evaluates a (possibly non-Boolean) query `{free | formula}` on an instance
/// with the **relational-algebra evaluator**, producing the answer relation
/// over the listed free variables.
///
/// The formula is compiled to a hash-consed plan and evaluated with sub-plan
/// memoization; see the module documentation.  For one-shot evaluation this
/// convenience compiles and evaluates in one call — callers re-evaluating the
/// same query on changing instances (the Datalog engine) should compile once
/// via [`compile_query`].
///
/// # Errors
/// Returns an error if the formula mentions undeclared relations or uses them with the
/// wrong arity.
pub fn eval_query<T: Theory>(
    formula: &Formula<T::A>,
    free: &[Var],
    instance: &Instance<T>,
) -> Result<Relation<T>, EvalError> {
    compile_query(formula, free).eval(instance)
}

/// Evaluates a Boolean query (sentence) on an instance.
///
/// # Errors
/// Returns an error if the formula mentions undeclared relations or uses them with the
/// wrong arity.
pub fn eval_sentence<T: Theory>(
    formula: &Formula<T::A>,
    instance: &Instance<T>,
) -> Result<bool, EvalError> {
    let answer = eval_query(formula, &[], instance)?;
    Ok(!answer.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseAtom, DenseOrder};
    use crate::logic::Term;
    use crate::relation::GenTuple;
    use crate::schema::Schema;
    use frdb_num::Rat;

    type F = Formula<DenseAtom>;

    #[test]
    fn uncovered_free_variables_are_a_typed_error_in_both_evaluators() {
        // Regression: `{x | R(x, y)}` has the free variable y outside the
        // answer list; both evaluators used to build a relation whose tuples
        // mention a non-column variable, which panicked later inside
        // membership substitution.  They must now report a typed error.
        let schema = Schema::from_pairs([("R", 2)]);
        let mut inst: Instance<DenseOrder> = Instance::new(schema);
        inst.set(
            "R",
            Relation::from_dnf(
                vec![Var::new("x"), Var::new("y")],
                vec![vec![DenseAtom::lt(Term::var("x"), Term::var("y"))]],
            ),
        )
        .unwrap();
        let q: F = Formula::rel("R", [Term::var("x"), Term::var("y")]);
        let free = [Var::new("x")];
        let expected = EvalError::FreeVariableNotListed {
            variable: "y".into(),
        };
        assert_eq!(eval_query(&q, &free, &inst).unwrap_err(), expected);
        assert_eq!(eval_query_expand(&q, &free, &inst).unwrap_err(), expected);
        // A superset of the free variables stays fine (universal in extras).
        let wide = [Var::new("x"), Var::new("y"), Var::new("z")];
        assert!(eval_query(&q, &wide, &inst).is_ok());
        assert!(eval_query_expand(&q, &wide, &inst).is_ok());
    }

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn interval_instance() -> Instance<DenseOrder> {
        // R = [0, 10] ∪ [20, 30]   (monadic), S = {(1,2), (2,3), (3,4)} (binary, finite)
        let schema = Schema::from_pairs([("R", 1), ("S", 2)]);
        let mut inst = Instance::new(schema);
        let seg = |lo: i64, hi: i64| {
            GenTuple::new(vec![
                DenseAtom::le(Term::cst(lo), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(hi)),
            ])
        };
        inst.set(
            "R",
            Relation::new(vec![Var::new("x")], vec![seg(0, 10), seg(20, 30)]),
        )
        .unwrap();
        inst.set(
            "S",
            Relation::from_points(
                vec![Var::new("x"), Var::new("y")],
                vec![vec![r(1), r(2)], vec![r(2), r(3)], vec![r(3), r(4)]],
            ),
        )
        .unwrap();
        inst
    }

    /// Both evaluators on the same query must produce equivalent relations.
    fn both(q: &F, free: &[Var], inst: &Instance<DenseOrder>) -> Relation<DenseOrder> {
        let algebraic = eval_query(q, free, inst).unwrap();
        let expand = eval_query_expand(q, free, inst).unwrap();
        assert!(
            algebraic.equivalent(&expand),
            "evaluators disagree on {q}: algebraic {algebraic} vs expand {expand}"
        );
        algebraic
    }

    #[test]
    fn selection_query() {
        // {x | R(x) ∧ x < 5}
        let inst = interval_instance();
        let q: F = Formula::rel("R", [Term::var("x")])
            .and(Formula::Atom(DenseAtom::lt(Term::var("x"), Term::cst(5))));
        let ans = both(&q, &[Var::new("x")], &inst);
        assert!(ans.contains(&[r(3)]));
        assert!(!ans.contains(&[r(7)]));
        assert!(!ans.contains(&[r(25)]));
    }

    #[test]
    fn projection_query() {
        // {x | ∃y. S(x, y)} = {1, 2, 3}
        let inst = interval_instance();
        let q: F = Formula::exists(["y"], Formula::rel("S", [Term::var("x"), Term::var("y")]));
        let ans = both(&q, &[Var::new("x")], &inst);
        assert!(ans.contains(&[r(1)]) && ans.contains(&[r(2)]) && ans.contains(&[r(3)]));
        assert!(!ans.contains(&[r(4)]));
    }

    #[test]
    fn join_query() {
        // {(x, z) | ∃y. S(x, y) ∧ S(y, z)} = {(1,3), (2,4)}
        let inst = interval_instance();
        let q: F = Formula::exists(
            ["y"],
            Formula::rel("S", [Term::var("x"), Term::var("y")])
                .and(Formula::rel("S", [Term::var("y"), Term::var("z")])),
        );
        let ans = both(&q, &[Var::new("x"), Var::new("z")], &inst);
        assert!(ans.contains(&[r(1), r(3)]));
        assert!(ans.contains(&[r(2), r(4)]));
        assert!(!ans.contains(&[r(1), r(2)]));
        assert!(!ans.contains(&[r(3), r(1)]));
    }

    #[test]
    fn universal_quantifier() {
        // ∀x. R(x) → x ≤ 30   holds;   ∀x. R(x) → x ≤ 10   fails.
        let inst = interval_instance();
        let holds: F = Formula::forall(
            ["x"],
            Formula::rel("R", [Term::var("x")])
                .implies(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(30)))),
        );
        let fails: F = Formula::forall(
            ["x"],
            Formula::rel("R", [Term::var("x")])
                .implies(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(10)))),
        );
        assert!(eval_sentence(&holds, &inst).unwrap());
        assert!(!eval_sentence(&fails, &inst).unwrap());
        assert!(eval_sentence_expand(&holds, &inst).unwrap());
        assert!(!eval_sentence_expand(&fails, &inst).unwrap());
    }

    #[test]
    fn negation_and_between() {
        // {x | ¬R(x) ∧ 0 ≤ x ∧ x ≤ 30}: the gap (10, 20).
        let inst = interval_instance();
        let q: F = Formula::rel("R", [Term::var("x")])
            .not()
            .and(Formula::Atom(DenseAtom::le(Term::cst(0), Term::var("x"))))
            .and(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(30))));
        let ans = both(&q, &[Var::new("x")], &inst);
        assert!(ans.contains(&[r(15)]));
        assert!(!ans.contains(&[r(5)]));
        assert!(!ans.contains(&[r(25)]));
        assert!(!ans.contains(&[r(31)]));
    }

    #[test]
    fn density_is_visible_to_queries() {
        // ∀x ∀y. x < y → ∃z. x < z ∧ z < y  — density of the order, a valid sentence.
        let inst = Instance::new(Schema::new());
        let q: F = Formula::forall(
            ["x", "y"],
            Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("y"))).implies(Formula::exists(
                ["z"],
                Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("z")))
                    .and(Formula::Atom(DenseAtom::lt(Term::var("z"), Term::var("y")))),
            )),
        );
        assert!(eval_sentence::<DenseOrder>(&q, &inst).unwrap());
        // No endpoints: ∃x ∀y. x ≤ y  is false.
        let q2: F = Formula::exists(
            ["x"],
            Formula::forall(
                ["y"],
                Formula::Atom(DenseAtom::le(Term::var("x"), Term::var("y"))),
            ),
        );
        assert!(!eval_sentence::<DenseOrder>(&q2, &inst).unwrap());
    }

    #[test]
    fn constant_argument_in_relation_atom() {
        // R(25) is true, R(15) is false.
        let inst = interval_instance();
        let q_true: F = Formula::rel("R", [Term::cst(25)]);
        let q_false: F = Formula::rel("R", [Term::cst(15)]);
        assert!(eval_sentence(&q_true, &inst).unwrap());
        assert!(!eval_sentence(&q_false, &inst).unwrap());
        assert!(eval_sentence_expand(&q_true, &inst).unwrap());
        assert!(!eval_sentence_expand(&q_false, &inst).unwrap());
    }

    #[test]
    fn repeated_variable_in_relation_atom() {
        // {x | S(x, x)} is empty for our S.
        let inst = interval_instance();
        let q: F = Formula::rel("S", [Term::var("x"), Term::var("x")]);
        let ans = both(&q, &[Var::new("x")], &inst);
        assert!(ans.is_empty());
    }

    #[test]
    fn errors_are_reported() {
        let inst = interval_instance();
        let unknown: F = Formula::rel("T", [Term::var("x")]);
        assert!(matches!(
            eval_query(&unknown, &[Var::new("x")], &inst),
            Err(EvalError::UnknownRelation(_))
        ));
        let wrong_arity: F = Formula::rel("S", [Term::var("x")]);
        assert!(matches!(
            eval_query(&wrong_arity, &[Var::new("x")], &inst),
            Err(EvalError::ArityMismatch { .. })
        ));
        // Errors surface even from sub-formulas the plan simplifier prunes.
        let pruned: F = Formula::False.and(Formula::rel("T", [Term::var("x")]));
        assert!(matches!(
            eval_query(&pruned, &[Var::new("x")], &inst),
            Err(EvalError::UnknownRelation(_))
        ));
        assert!(matches!(
            eval_query_expand(&pruned, &[Var::new("x")], &inst),
            Err(EvalError::UnknownRelation(_))
        ));
    }

    #[test]
    fn answers_are_finitely_representable_and_composable() {
        // Compose: the answer of one query is stored and queried again.
        let inst = interval_instance();
        let q: F = Formula::rel("R", [Term::var("x")])
            .and(Formula::Atom(DenseAtom::lt(Term::var("x"), Term::cst(5))));
        let ans = both(&q, &[Var::new("x")], &inst);
        let schema = Schema::from_pairs([("A", 1)]);
        let mut inst2 = Instance::new(schema);
        inst2.set("A", ans).unwrap();
        let q2: F = Formula::exists(["x"], Formula::rel("A", [Term::var("x")]));
        assert!(eval_sentence(&q2, &inst2).unwrap());
    }

    #[test]
    fn repeated_subformulas_are_hash_consed_and_memoized() {
        // φ ↔ ψ duplicates both sides; hash-consing must collapse the copies.
        let phi: F = Formula::exists(["y"], Formula::rel("S", [Term::var("x"), Term::var("y")]));
        let psi: F = Formula::rel("R", [Term::var("x")]);
        let q = phi.clone().iff(psi.clone());
        let compiled = compile_query::<DenseOrder>(&q, &[Var::new("x")]);
        // The naive tree has two copies of φ and ψ each (plus complements);
        // the DAG must contain a single φ node.
        let duplicated = {
            let tree: F = Formula::disj([phi.clone().not().and(psi.clone()), psi.not().and(phi)]);
            compile_query::<DenseOrder>(&tree, &[Var::new("x")])
        };
        assert!(compiled.plan().node_count() <= duplicated.plan().node_count());
        // And the evaluation agrees with the baseline.
        let inst = interval_instance();
        let a = compiled.eval(&inst).unwrap();
        let b = eval_query_expand(&q, &[Var::new("x")], &inst).unwrap();
        assert!(a.equivalent(&b));
    }

    #[test]
    fn compiled_queries_are_reusable_across_instances() {
        let q: F = Formula::exists(["y"], Formula::rel("S", [Term::var("x"), Term::var("y")]));
        let compiled = compile_query::<DenseOrder>(&q, &[Var::new("x")]);
        let inst = interval_instance();
        let a = compiled.eval(&inst).unwrap();
        assert!(a.contains(&[r(1)]));
        // Second instance with a different S.
        let mut inst2 = Instance::new(Schema::from_pairs([("R", 1), ("S", 2)]));
        inst2
            .set(
                "S",
                Relation::from_points(vec![Var::new("x"), Var::new("y")], vec![vec![r(7), r(8)]]),
            )
            .unwrap();
        let b = compiled.eval(&inst2).unwrap();
        assert!(b.contains(&[r(7)]));
        assert!(!b.contains(&[r(1)]));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn queries_over_the_fresh_namespace_are_rejected() {
        // Capture regression: a query whose variable is literally named `#0`
        // would shadow the first fresh variable minted by relation expansion.
        // Constructing it now fails loudly at the variable, before any
        // expansion can capture.
        let q: F = Formula::exists(
            ["#0"],
            Formula::rel("R", [Term::var("#0")])
                .and(Formula::Atom(DenseAtom::lt(Term::var("#0"), Term::cst(5)))),
        );
        let _ = eval_query(&q, &[], &interval_instance());
    }

    #[test]
    fn near_miss_fresh_names_do_not_confuse_expansion() {
        // Legal names resembling the fresh pattern ("f0", "x0") expand and
        // evaluate correctly on both paths.
        let schema = Schema::from_pairs([("S", 2)]);
        let mut inst: Instance<DenseOrder> = Instance::new(schema);
        inst.set(
            "S",
            Relation::from_points(
                vec![Var::new("f0"), Var::new("f1")],
                vec![vec![r(1), r(2)], vec![r(2), r(3)]],
            ),
        )
        .unwrap();
        let q: F = Formula::exists(
            ["f1"],
            Formula::rel("S", [Term::var("f0"), Term::var("f1")])
                .and(Formula::rel("S", [Term::var("f1"), Term::var("x0")])),
        );
        let ans = both(&q, &[Var::new("f0"), Var::new("x0")], &inst);
        assert!(ans.contains(&[r(1), r(3)]));
        assert!(!ans.contains(&[r(2), r(3)]));
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        // A chain long enough to clear the parallel engagement threshold: the
        // two-hop join partitions across workers and must merge to exactly
        // the serial representation (same tuples, same order).
        let n = 64i64;
        let mut inst: Instance<DenseOrder> = Instance::new(Schema::from_pairs([("S", 2)]));
        let points: Vec<Vec<Rat>> = (0..n).map(|i| vec![r(i), r(i + 1)]).collect();
        inst.set(
            "S",
            Relation::from_points(vec![Var::new("x"), Var::new("y")], points),
        )
        .unwrap();
        let q: F = Formula::exists(
            ["y"],
            Formula::rel("S", [Term::var("x"), Term::var("y")])
                .and(Formula::rel("S", [Term::var("y"), Term::var("z")])),
        );
        let free = [Var::new("x"), Var::new("z")];
        let serial = compile_query::<DenseOrder>(&q, &free).eval(&inst).unwrap();
        for threads in [2usize, 4] {
            let parallel = compile_query::<DenseOrder>(&q, &free)
                .with_threads(threads)
                .eval(&inst)
                .unwrap();
            assert_eq!(
                serial.to_dnf(),
                parallel.to_dnf(),
                "threads={threads} diverged from serial"
            );
        }
    }

    #[test]
    fn plan_simplifier_folds_constants_and_double_negation() {
        let q: F = Formula::True.and(Formula::rel("R", [Term::var("x")]).not().not());
        let compiled = compile_query::<DenseOrder>(&q, &[Var::new("x")]);
        // ⊤ ∧ ¬¬R(x) collapses to the bare rename leaf.
        assert_eq!(compiled.plan().node_count(), 1);
        assert_eq!(compiled.plan().to_string(), "R(x)");
        let inst = interval_instance();
        let ans = both(&q, &[Var::new("x")], &inst);
        assert!(ans.contains(&[r(5)]));
    }
}
