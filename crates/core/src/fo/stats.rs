//! Per-relation statistics driving the plan optimizer's cost model.
//!
//! The optimizer ([`super::optimize`]) orders join trees by estimated
//! intermediate cardinality.  Everything it knows about the data comes from a
//! [`Statistics`] snapshot collected here: per stored relation, the number of
//! generalized tuples, the total atom count, and — per column — how many
//! tuples **pin** that column to a constant ([`crate::theory::Theory::ctx_pinned`])
//! and how many distinct pinned values occur.  Pin counts are read off the
//! tuples' cached canonical contexts, so collection costs one table lookup per
//! tuple and column, never a context construction.
//!
//! Statistics are a snapshot of one instance: the Datalog engine collects them
//! once per fixpoint run against the seeded evaluation instance, not per
//! round, and a compiled query carries none — [`super::compile_query`]
//! optimizes with uniform defaults, and
//! [`super::CompiledQuery::optimized_for`] re-optimizes an existing plan
//! against a snapshot.

use crate::relation::{Instance, Relation};
use crate::schema::RelName;
use crate::theory::Theory;
use frdb_num::Rat;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Pin and bound statistics of one column of a stored relation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnStats {
    /// Number of generalized tuples whose canonical context pins this column
    /// to a constant (`col = c` is entailed).
    pub pinned: usize,
    /// Number of distinct constants the column is pinned to across the
    /// relation's tuples.
    pub distinct_pins: usize,
    /// Number of tuples whose context entails a **two-sided** constant
    /// envelope on the column ([`crate::theory::Theory::ctx_bounds`]); pinned
    /// tuples count as zero-width envelopes.
    pub bounded: usize,
    /// Average envelope width across the bounded tuples (0 when none).
    pub avg_width: f64,
    /// Smallest lower endpoint across the bounded tuples (0 when none).
    pub lo: f64,
    /// Largest upper endpoint across the bounded tuples (0 when none).
    pub hi: f64,
}

/// Statistics of one stored relation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RelationStats {
    /// Number of generalized tuples in the stored representation.
    pub tuples: usize,
    /// Total number of constraint atoms across the representation.
    pub atoms: usize,
    /// Per-column pin statistics, in the stored column order.
    pub columns: Vec<ColumnStats>,
}

impl RelationStats {
    /// Collects the statistics of a single relation value.
    #[must_use]
    pub fn of<T: Theory>(rel: &Relation<T>) -> RelationStats {
        /// Accumulator per column: pins, then the envelope aggregates
        /// (count, total width, min lower, max upper).
        #[derive(Clone, Default)]
        struct Acc {
            pinned: usize,
            pins: BTreeSet<Rat>,
            bounded: usize,
            width_sum: f64,
            lo: f64,
            hi: f64,
        }
        let finite = |b: &Bound<Rat>| -> Option<f64> {
            match b {
                Bound::Unbounded => None,
                Bound::Included(v) | Bound::Excluded(v) => Some(v.to_f64()),
            }
        };
        let mut columns: Vec<Acc> = vec![Acc::default(); rel.arity()];
        for tuple in rel.tuples() {
            for (i, var) in rel.vars().iter().enumerate() {
                let acc = &mut columns[i];
                let pin = tuple.with_ctx::<T, _>(|ctx| T::ctx_pinned(ctx, var));
                if let Some(c) = &pin {
                    acc.pinned += 1;
                    acc.pins.insert(c.clone());
                }
                // Two-sided envelopes only (a half-open envelope has no
                // width); a pin is the degenerate zero-width envelope even
                // when the theory derives no explicit bounds for it.
                let env = tuple
                    .with_ctx::<T, _>(|ctx| T::ctx_bounds(ctx, var))
                    .and_then(|(lo, hi)| Some((finite(&lo)?, finite(&hi)?)))
                    .or_else(|| pin.map(|c| (c.to_f64(), c.to_f64())));
                if let Some((lo, hi)) = env {
                    if acc.bounded == 0 {
                        (acc.lo, acc.hi) = (lo, hi);
                    } else {
                        acc.lo = acc.lo.min(lo);
                        acc.hi = acc.hi.max(hi);
                    }
                    acc.bounded += 1;
                    acc.width_sum += (hi - lo).max(0.0);
                }
            }
        }
        RelationStats {
            tuples: rel.num_tuples(),
            atoms: rel.num_atoms(),
            columns: columns
                .into_iter()
                .map(|acc| ColumnStats {
                    pinned: acc.pinned,
                    distinct_pins: acc.pins.len(),
                    bounded: acc.bounded,
                    avg_width: if acc.bounded == 0 {
                        0.0
                    } else {
                        acc.width_sum / acc.bounded as f64
                    },
                    lo: acc.lo,
                    hi: acc.hi,
                })
                .collect(),
        }
    }
}

/// A statistics snapshot of one database instance: per-relation tuple, atom
/// and column-pin counts, keyed by relation name.
#[derive(Clone, Debug, Default)]
pub struct Statistics {
    rels: BTreeMap<RelName, RelationStats>,
}

impl Statistics {
    /// The empty snapshot: every relation estimated with uniform defaults.
    /// This is what [`super::compile_query`] optimizes against.
    #[must_use]
    pub fn none() -> Statistics {
        Statistics::default()
    }

    /// Collects statistics for every declared relation of an instance.
    ///
    /// The pin queries run against the tuples' cached canonical contexts, so a
    /// snapshot of an instance whose relations have already been touched by
    /// the evaluator costs only table lookups.
    #[must_use]
    pub fn collect<T: Theory>(instance: &Instance<T>) -> Statistics {
        Statistics::collect_only(instance, instance.schema().iter().map(|(name, _)| name))
    }

    /// Collects statistics for the listed relations only — what a caller
    /// optimizing one query should use ([`super::CompiledQuery::relations`]
    /// names exactly the relations the query reads), so the cost of a
    /// snapshot scales with the query, not with the whole instance.
    /// Undeclared names are skipped.
    #[must_use]
    pub fn collect_only<'a, T: Theory>(
        instance: &Instance<T>,
        names: impl IntoIterator<Item = &'a RelName>,
    ) -> Statistics {
        let mut rels = BTreeMap::new();
        for name in names {
            if let Some(rel) = instance.get(name) {
                rels.insert(name.clone(), RelationStats::of(&rel));
            }
        }
        Statistics { rels }
    }

    /// The statistics of one relation, when the snapshot covers it.
    #[must_use]
    pub fn relation(&self, name: &RelName) -> Option<&RelationStats> {
        self.rels.get(name)
    }

    /// Number of relations covered by the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the snapshot covers no relations (the [`Statistics::none`]
    /// default).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseAtom, DenseOrder};
    use crate::logic::{Term, Var};
    use crate::relation::{GenTuple, Instance, Relation};
    use crate::schema::Schema;

    #[test]
    fn collect_reads_pin_counts_off_cached_contexts() {
        let mut inst: Instance<DenseOrder> =
            Instance::new(Schema::from_pairs([("S", 2), ("R", 1)]));
        // S: two point tuples (both columns pinned) and one rectangle (none).
        inst.set(
            "S",
            Relation::new(
                vec![Var::new("x"), Var::new("y")],
                vec![
                    GenTuple::new(vec![
                        DenseAtom::eq(Term::var("x"), Term::cst(1)),
                        DenseAtom::eq(Term::var("y"), Term::cst(2)),
                    ]),
                    GenTuple::new(vec![
                        DenseAtom::eq(Term::var("x"), Term::cst(1)),
                        DenseAtom::eq(Term::var("y"), Term::cst(3)),
                    ]),
                    GenTuple::new(vec![
                        DenseAtom::le(Term::cst(5), Term::var("x")),
                        DenseAtom::le(Term::var("x"), Term::cst(6)),
                    ]),
                ],
            ),
        )
        .unwrap();
        let stats = Statistics::collect(&inst);
        let s = stats.relation(&RelName::new("S")).expect("S is stored");
        assert_eq!(s.tuples, 3);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.columns[0].pinned, 2);
        assert_eq!(s.columns[0].distinct_pins, 1); // x pinned to 1 twice
        assert_eq!(s.columns[1].pinned, 2);
        assert_eq!(s.columns[1].distinct_pins, 2); // y pinned to 2 and 3
                                                   // Declared but unset relations are covered with empty stats.
        let r = stats.relation(&RelName::new("R")).expect("R is declared");
        assert_eq!(r.tuples, 0);
    }
}
