//! The process-wide compiled-plan cache.
//!
//! Compiling a query (formula → hash-consed plan IR) and re-optimizing it
//! against an instance's statistics are pure functions of
//! `(formula, answer variables, configuration, instance contents)`.  The PR 5
//! pipeline paid that cost once per *session object* (the Datalog engine
//! caches per program, the CLI per query definition); nothing was shared
//! across sessions, so N concurrent sessions asking the same question paid N
//! compile/optimize passes.
//!
//! [`PlanCache`] shares both stages process-wide:
//!
//! * **Compiled plans** are keyed by `(formula hash, theory, opt level,
//!   threads)` — instance-independent, so they survive every update.
//! * **Statistics-reoptimized plans** are additionally keyed by the **schema
//!   generation** of the instance they were optimized for.  A generation is a
//!   globally unique token ([`next_generation`]) stamped on every committed
//!   database snapshot; committing a write bumps the generation, so stale
//!   reoptimized plans are never served — the next query against the new
//!   snapshot misses, re-optimizes once, and repopulates the cache.
//!
//! Lookups verify full formula equality behind the hash (a collision falls
//! back to an uncached compile, never a wrong plan), and [`PlanCacheStats`]
//! exposes hit/miss/optimizer counters so tests — and capacity planning — can
//! observe that a warm cache performs **zero** optimizer invocations on
//! repeated queries.  Both query engines go through this cache: the FO path
//! via [`PlanCache::compile`]/[`PlanCache::reoptimize`], and the Datalog
//! engine's per-program rule-plan cache, whose rule bodies are compiled
//! through [`PlanCache::global`].

use super::optimize::{OptLevel, PlanConfig};
use super::stats::Statistics;
use super::{compile_query_with, CompiledQuery};
use crate::logic::{Formula, Var};
use crate::theory::Theory;
use std::any::{Any, TypeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hands out globally unique, monotonically increasing schema-generation
/// tokens.  Every committed database snapshot is stamped with one, so
/// generation-keyed cache entries can never be confused between two database
/// handles living in the same process.
pub fn next_generation() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Which compilation stage a cache entry holds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Stage {
    /// The instance-independent compiled plan (optimized against uniform
    /// statistics when the configuration asks for optimization at all).
    Compiled,
    /// The plan re-optimized against the statistics of the instance at this
    /// schema generation.
    Reoptimized(u64),
}

/// The cache key: a structural hash of `(formula, free)` plus everything else
/// that changes the compiled artifact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Key {
    query_hash: u64,
    theory: TypeId,
    opt: OptLevel,
    threads: usize,
    factorize: bool,
    stage: Stage,
}

/// A cached plan together with the query it was compiled from, so lookups can
/// verify equality behind the hash.
struct CachedPlan<T: Theory> {
    formula: Formula<T::A>,
    free: Vec<Var>,
    compiled: CompiledQuery<T>,
}

/// Counter snapshot of a [`PlanCache`]; see the field docs.  All counters are
/// process-lifetime monotone — tests should assert on deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Compile-stage lookups answered from the cache.
    pub compile_hits: u64,
    /// Compile-stage lookups that had to compile (and possibly optimize).
    pub compile_misses: u64,
    /// Reoptimize-stage lookups answered from the cache — no statistics were
    /// collected and no optimizer pass ran.
    pub reoptimize_hits: u64,
    /// Reoptimize-stage lookups that had to run the optimizer.
    pub reoptimize_misses: u64,
    /// Times the cost-guided optimizer actually ran on behalf of this cache
    /// (compile misses at [`OptLevel::Full`] plus reoptimize misses).  A warm
    /// cache serves repeated queries with **zero** new invocations.
    pub optimizer_invocations: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
}

/// A process-wide cache of compiled and statistics-reoptimized query plans,
/// shared by every session and both query engines.  See the module docs.
pub struct PlanCache {
    /// Hash buckets: full equality is verified per entry, so a 64-bit
    /// collision degrades to an extra comparison, never a wrong plan.
    entries: Mutex<HashMap<Key, Vec<Arc<dyn Any + Send + Sync>>>>,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
    reoptimize_hits: AtomicU64,
    reoptimize_misses: AtomicU64,
    optimizer_invocations: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Default maximum number of cached plans before eviction.
const DEFAULT_CAPACITY: usize = 4096;

impl PlanCache {
    /// An empty cache with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache evicting once more than `capacity` plans are held.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            compile_hits: AtomicU64::new(0),
            compile_misses: AtomicU64::new(0),
            reoptimize_hits: AtomicU64::new(0),
            reoptimize_misses: AtomicU64::new(0),
            optimizer_invocations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// The process-wide shared cache: every `Database` handle defaults to it,
    /// and the Datalog engine compiles rule bodies through it.
    pub fn global() -> &'static Arc<PlanCache> {
        static GLOBAL: OnceLock<Arc<PlanCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(PlanCache::new()))
    }

    /// A counter snapshot (hits, misses, optimizer invocations, evictions).
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            compile_hits: self.compile_hits.load(Ordering::Relaxed),
            compile_misses: self.compile_misses.load(Ordering::Relaxed),
            reoptimize_hits: self.reoptimize_hits.load(Ordering::Relaxed),
            reoptimize_misses: self.reoptimize_misses.load(Ordering::Relaxed),
            optimizer_invocations: self.optimizer_invocations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached plans (both stages).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("plan cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache holds no plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are preserved).
    pub fn clear(&self) {
        self.entries.lock().expect("plan cache poisoned").clear();
    }

    /// The compiled plan for `{free | formula}` under `config`, compiling (and
    /// counting one optimizer invocation at [`OptLevel::Full`]) on the first
    /// request and sharing the plan with every later identical request.
    pub fn compile<T: Theory>(
        &self,
        formula: &Formula<T::A>,
        free: &[Var],
        config: &PlanConfig,
    ) -> CompiledQuery<T> {
        let key = self.key::<T>(formula, free, config, Stage::Compiled);
        if let Some(hit) = self.lookup::<T>(&key, formula, free) {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.compile_misses.fetch_add(1, Ordering::Relaxed);
        if config.opt == OptLevel::Full {
            self.optimizer_invocations.fetch_add(1, Ordering::Relaxed);
        }
        let compiled = compile_query_with::<T>(formula, free, config);
        self.insert::<T>(key, formula, free, compiled.clone());
        compiled
    }

    /// The plan for `{free | formula}` re-optimized against the statistics of
    /// the instance at schema generation `generation`.  On a hit, neither
    /// `statistics` nor the optimizer runs; on a miss the compiled plan
    /// (itself cached) is re-optimized once and cached under the generation.
    /// A commit bumps the generation, so the stale entry is simply never
    /// asked for again.
    pub fn reoptimize<T: Theory>(
        &self,
        formula: &Formula<T::A>,
        free: &[Var],
        config: &PlanConfig,
        generation: u64,
        statistics: impl FnOnce() -> Statistics,
    ) -> CompiledQuery<T> {
        let compiled = self.compile::<T>(formula, free, config);
        if config.opt == OptLevel::None {
            // Nothing to re-optimize: the compiled plan is the final plan.
            return compiled;
        }
        let key = self.key::<T>(formula, free, config, Stage::Reoptimized(generation));
        if let Some(hit) = self.lookup::<T>(&key, formula, free) {
            self.reoptimize_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.reoptimize_misses.fetch_add(1, Ordering::Relaxed);
        self.optimizer_invocations.fetch_add(1, Ordering::Relaxed);
        let reoptimized = compiled.optimized_for(&statistics());
        self.insert::<T>(key, formula, free, reoptimized.clone());
        reoptimized
    }

    fn key<T: Theory>(
        &self,
        formula: &Formula<T::A>,
        free: &[Var],
        config: &PlanConfig,
        stage: Stage,
    ) -> Key {
        let mut h = DefaultHasher::new();
        formula.hash(&mut h);
        free.hash(&mut h);
        Key {
            query_hash: h.finish(),
            theory: TypeId::of::<T>(),
            opt: config.opt,
            threads: config.threads,
            factorize: config.factorize,
            stage,
        }
    }

    fn lookup<T: Theory>(
        &self,
        key: &Key,
        formula: &Formula<T::A>,
        free: &[Var],
    ) -> Option<CompiledQuery<T>> {
        let entries = self.entries.lock().expect("plan cache poisoned");
        let bucket = entries.get(key)?;
        bucket.iter().find_map(|entry| {
            let cached = entry.downcast_ref::<CachedPlan<T>>()?;
            (cached.formula == *formula && cached.free == free).then(|| cached.compiled.clone())
        })
    }

    fn insert<T: Theory>(
        &self,
        key: Key,
        formula: &Formula<T::A>,
        free: &[Var],
        compiled: CompiledQuery<T>,
    ) {
        let entry: Arc<dyn Any + Send + Sync> = Arc::new(CachedPlan::<T> {
            formula: formula.clone(),
            free: free.to_vec(),
            compiled,
        });
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        let held: usize = entries.values().map(Vec::len).sum();
        if held >= self.capacity {
            // Generation-keyed entries go first: superseded generations are
            // unreachable anyway, and compile-stage plans are the expensive
            // ones to rebuild.  If that is not enough the whole cache resets —
            // it is a cache, correctness never depends on residency.
            let before = held;
            entries.retain(|k, _| k.stage == Stage::Compiled);
            let mut after: usize = entries.values().map(Vec::len).sum();
            if after >= self.capacity {
                entries.clear();
                after = 0;
            }
            self.evictions
                .fetch_add((before - after) as u64, Ordering::Relaxed);
        }
        entries.entry(key).or_default().push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseAtom, DenseOrder};
    use crate::logic::Term;
    use crate::relation::{Instance, Relation};
    use crate::schema::Schema;
    use frdb_num::Rat;

    fn query() -> (Formula<DenseAtom>, Vec<Var>) {
        let f = Formula::exists(
            ["y"],
            Formula::rel("S", [Term::var("x"), Term::var("y")])
                .and(Formula::rel("S", [Term::var("y"), Term::var("z")])),
        );
        (f, vec![Var::new("x"), Var::new("z")])
    }

    fn instance() -> Instance<DenseOrder> {
        let mut inst = Instance::new(Schema::from_pairs([("S", 2)]));
        inst.set(
            "S",
            Relation::from_points(
                vec![Var::new("x"), Var::new("y")],
                vec![
                    vec![Rat::from_i64(1), Rat::from_i64(2)],
                    vec![Rat::from_i64(2), Rat::from_i64(3)],
                ],
            ),
        )
        .unwrap();
        inst
    }

    #[test]
    fn repeated_compiles_hit_and_run_no_optimizer() {
        let cache = PlanCache::new();
        let (f, free) = query();
        let config = PlanConfig::default();
        let a = cache.compile::<DenseOrder>(&f, &free, &config);
        let after_first = cache.stats();
        assert_eq!(after_first.compile_misses, 1);
        assert_eq!(after_first.optimizer_invocations, 1);
        let b = cache.compile::<DenseOrder>(&f, &free, &config);
        let after_second = cache.stats();
        assert_eq!(after_second.compile_hits, 1);
        assert_eq!(
            after_second.optimizer_invocations, 1,
            "a warm compile must not re-run the optimizer"
        );
        // The shared plan is the same artifact, and both evaluate identically.
        let inst = instance();
        assert!(a.eval(&inst).unwrap().equivalent(&b.eval(&inst).unwrap()));
    }

    #[test]
    fn generation_bump_invalidates_and_requery_repopulates() {
        let cache = PlanCache::new();
        let (f, free) = query();
        let config = PlanConfig::default();
        let inst = instance();
        let gen1 = next_generation();
        let stats = || Statistics::collect(&inst);
        let _ = cache.reoptimize::<DenseOrder>(&f, &free, &config, gen1, stats);
        let warm = cache.stats();
        assert_eq!(warm.reoptimize_misses, 1);
        // Warm repeat: zero new optimizer invocations, no statistics run.
        let _ = cache.reoptimize::<DenseOrder>(&f, &free, &config, gen1, || {
            panic!("statistics must not be collected on a cache hit")
        });
        assert_eq!(cache.stats().reoptimize_hits, 1);
        assert_eq!(
            cache.stats().optimizer_invocations,
            warm.optimizer_invocations
        );
        // Generation bump: the old entry is unreachable, the query re-optimizes
        // once and the cache is warm again for the new generation.
        let gen2 = next_generation();
        assert!(gen2 > gen1);
        let _ = cache.reoptimize::<DenseOrder>(&f, &free, &config, gen2, stats);
        assert_eq!(cache.stats().reoptimize_misses, 2);
        let _ = cache.reoptimize::<DenseOrder>(&f, &free, &config, gen2, || {
            panic!("statistics must not be collected on a cache hit")
        });
        assert_eq!(cache.stats().reoptimize_hits, 2);
    }

    #[test]
    fn identical_requests_share_one_entry() {
        let cache = PlanCache::new();
        let f: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")]);
        let free = vec![Var::new("x")];
        let config = PlanConfig::default();
        let _ = cache.compile::<DenseOrder>(&f, &free, &config);
        let _ = cache.compile::<DenseOrder>(&f, &free, &config);
        assert_eq!(cache.stats().compile_hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_eviction_never_serves_a_wrong_plan() {
        let cache = PlanCache::with_capacity(4);
        let config = PlanConfig::default();
        let free = vec![Var::new("x")];
        for i in 0..16i64 {
            let f: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")])
                .and(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(i))));
            let _ = cache.compile::<DenseOrder>(&f, &free, &config);
        }
        assert!(cache.len() <= 4);
        assert!(cache.stats().evictions > 0);
        // A re-request after eviction recompiles correctly.
        let f: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")])
            .and(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(0))));
        let compiled = cache.compile::<DenseOrder>(&f, &free, &config);
        let mut inst = Instance::new(Schema::from_pairs([("R", 1)]));
        inst.set(
            "R",
            Relation::from_points(vec![Var::new("x")], vec![vec![Rat::from_i64(0)]]),
        )
        .unwrap();
        assert!(compiled.eval(&inst).unwrap().contains(&[Rat::from_i64(0)]));
    }
}
