//! End-to-end query tracing: a deterministic span tree mirroring the
//! (hash-consed) plan DAG, produced by [`super::CompiledQuery::eval_traced`].
//!
//! The evaluator threads a [`TraceProbe`] through [`super::eval_plan`]; when
//! the probe is off — every path except `eval_traced` — the per-node cost is
//! a single enum-discriminant branch, so tracing compiles to zero work on the
//! hot paths (pinned by the factorized/join-index benches).  When on, the
//! probe records, per plan node, the **inclusive** wall time of the node's
//! evaluation, and per *join* node the column-index builds/reuses its own
//! pairwise joins performed (bracketed tightly around the join calls, so
//! child evaluation is excluded).
//!
//! The resulting [`QueryTrace`] has two renderings:
//!
//! * [`fmt::Display`] — the deterministic form: tree shape, output
//!   cardinalities and factorized part counts, join strategies with their
//!   candidate-pair pruning ratios, and index build/reuse counts.  Every
//!   quantity is **invariant under the evaluator's thread count** (parallel
//!   joins merge bit-identically, and index decisions happen on the
//!   coordinating thread before workers spawn), so `trace` transcripts are
//!   golden-testable at any thread count.
//! * [`QueryTrace::timed`] — the same tree annotated with per-span wall time
//!   and the configured worker budget; machine- and run-dependent, rendered
//!   only under the CLI's `--timings` flag (to stderr).

use super::{Factored, Plan, PlanNode};
use crate::relation::{column_index_counters, JoinReport};
use crate::theory::Theory;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-node measurements collected by an active probe, keyed by plan-node
/// identity (the hash-consed `Arc` address, like the evaluator's memo).
#[derive(Debug, Default)]
pub(super) struct TraceData {
    /// Inclusive wall time of each node's evaluation (children included;
    /// memoized re-visits add nothing).
    timings: HashMap<usize, Duration>,
    /// Column-index `(builds, reuses)` performed by a join node's own
    /// pairwise joins (children excluded).
    index_deltas: HashMap<usize, (u64, u64)>,
}

/// The evaluator's tracing hook: off everywhere except
/// [`super::CompiledQuery::eval_traced`].
#[derive(Debug)]
pub(super) enum TraceProbe {
    /// No tracing: every probe call is a single branch.
    Off,
    /// Tracing: record spans and index deltas into the carried data.
    On(TraceData),
}

impl TraceProbe {
    /// Starts a span when tracing is on: the wall clock only.
    #[inline]
    pub(super) fn begin(&self) -> Option<Instant> {
        match self {
            TraceProbe::Off => None,
            TraceProbe::On(_) => Some(Instant::now()),
        }
    }

    /// Ends a span started by [`TraceProbe::begin`].
    #[inline]
    pub(super) fn end(&mut self, key: usize, started: Option<Instant>) {
        if let (TraceProbe::On(data), Some(start)) = (self, started) {
            data.timings.insert(key, start.elapsed());
        }
    }

    /// The current column-index counters when tracing is on — the "before"
    /// snapshot of a tight bracket around one join call.
    #[inline]
    pub(super) fn index_base(&self) -> Option<(u64, u64)> {
        match self {
            TraceProbe::Off => None,
            TraceProbe::On(_) => Some(column_index_counters()),
        }
    }

    /// Accumulates the index builds/reuses since `base` onto the join node
    /// `key` (index work happens on the coordinating thread, so thread-local
    /// counters see all of it at any worker count).
    #[inline]
    pub(super) fn add_index_delta(&mut self, key: usize, base: Option<(u64, u64)>) {
        if let (TraceProbe::On(data), Some((b0, r0))) = (self, base) {
            let (b1, r1) = column_index_counters();
            let entry = data.index_deltas.entry(key).or_insert((0, 0));
            entry.0 += b1.saturating_sub(b0);
            entry.1 += r1.saturating_sub(r0);
        }
    }
}

/// One span of the trace tree.
#[derive(Clone, Debug)]
struct TraceNode {
    /// Operator label (same vocabulary as `EXPLAIN`).
    label: String,
    /// Output generalized-tuple count and factorized part count, when the
    /// evaluator produced the node.
    output: Option<(usize, usize)>,
    /// Join strategy and candidate-pair pruning ratio; join nodes only.
    strategy: Option<JoinReport>,
    /// Column indexes `(built, reused)` by this join's own pairwise joins.
    index_delta: Option<(u64, u64)>,
    /// Inclusive span wall time (children included); `None` when the node was
    /// never evaluated (pruned by early annihilation).
    elapsed: Option<Duration>,
    /// Sharing marker: `Some(id)` when the node has several parents.
    shared: Option<usize>,
    /// Whether this is a repeat visit to a shared node (children elided).
    repeat: bool,
    children: Vec<TraceNode>,
}

/// A deterministic span tree of one traced query evaluation.
///
/// Displayed without timings (byte-stable at any thread count); see
/// [`QueryTrace::timed`] for the wall-clock-annotated form.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    root: TraceNode,
    /// The evaluator's configured worker-thread budget.
    threads: usize,
    /// End-to-end evaluation time (plan walk + boundary merge/sort).
    total: Duration,
}

impl QueryTrace {
    pub(super) fn build<T: Theory>(
        plan: &Plan<T>,
        actuals: &HashMap<usize, Factored<T>>,
        reports: &HashMap<usize, JoinReport>,
        data: &TraceData,
        threads: usize,
        total: Duration,
    ) -> QueryTrace {
        let mut refs: HashMap<usize, usize> = HashMap::new();
        count_refs(plan, &mut refs, true);
        let mut ids: HashMap<usize, usize> = HashMap::new();
        let mut next_id = 1usize;
        let root = build_node(plan, actuals, reports, data, &refs, &mut ids, &mut next_id);
        QueryTrace {
            root,
            threads,
            total,
        }
    }

    /// The evaluator's configured worker-thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// End-to-end evaluation wall time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.total
    }

    /// The wall-clock-annotated rendering: every span line gains its
    /// inclusive time, and a header reports the total and the worker budget.
    /// Machine-dependent — keep it out of golden transcripts.
    #[must_use]
    pub fn timed(&self) -> TimedTrace<'_> {
        TimedTrace { trace: self }
    }
}

fn count_refs<T: Theory>(plan: &Plan<T>, refs: &mut HashMap<usize, usize>, root: bool) {
    let key = Arc::as_ptr(&plan.0) as usize;
    let n = refs.entry(key).or_insert(0);
    *n += 1;
    if *n > 1 && !root {
        return;
    }
    match &plan.0.node {
        PlanNode::Empty
        | PlanNode::Universal
        | PlanNode::Select(_)
        | PlanNode::Rename { .. }
        | PlanNode::Scan { .. } => {}
        PlanNode::Join(children) | PlanNode::Union(children) => {
            for c in children {
                count_refs(c, refs, false);
            }
        }
        PlanNode::Complement(p) => count_refs(p, refs, false),
        PlanNode::Project { input, .. } => count_refs(input, refs, false),
    }
}

fn build_node<T: Theory>(
    plan: &Plan<T>,
    actuals: &HashMap<usize, Factored<T>>,
    reports: &HashMap<usize, JoinReport>,
    data: &TraceData,
    refs: &HashMap<usize, usize>,
    ids: &mut HashMap<usize, usize>,
    next_id: &mut usize,
) -> TraceNode {
    let key = Arc::as_ptr(&plan.0) as usize;
    let output = actuals.get(&key).map(|f| (f.num_tuples(), f.num_parts()));
    let strategy = match &plan.0.node {
        PlanNode::Join(_) => reports.get(&key).copied(),
        _ => None,
    };
    let index_delta = data.index_deltas.get(&key).copied();
    let elapsed = data.timings.get(&key).copied();
    let multi = refs.get(&key).copied().unwrap_or(0) > 1;
    if multi {
        if let Some(&id) = ids.get(&key) {
            return TraceNode {
                label: super::explain::node_label(plan),
                output,
                strategy,
                index_delta,
                elapsed,
                shared: Some(id),
                repeat: true,
                children: Vec::new(),
            };
        }
        ids.insert(key, *next_id);
        *next_id += 1;
    }
    let shared = ids.get(&key).copied();
    let children = match &plan.0.node {
        PlanNode::Empty
        | PlanNode::Universal
        | PlanNode::Select(_)
        | PlanNode::Rename { .. }
        | PlanNode::Scan { .. } => Vec::new(),
        PlanNode::Join(cs) | PlanNode::Union(cs) => cs
            .iter()
            .map(|c| build_node(c, actuals, reports, data, refs, ids, next_id))
            .collect(),
        PlanNode::Complement(p) => vec![build_node(p, actuals, reports, data, refs, ids, next_id)],
        PlanNode::Project { input, .. } => {
            vec![build_node(
                input, actuals, reports, data, refs, ids, next_id,
            )]
        }
    };
    TraceNode {
        label: super::explain::node_label(plan),
        output,
        strategy,
        index_delta,
        elapsed,
        shared,
        repeat: false,
        children,
    }
}

/// The deterministic span annotations: output size, parts, strategy, index
/// work — everything except wall time.
fn line(node: &TraceNode, f: &mut fmt::Formatter<'_>, timed: bool) -> fmt::Result {
    write!(f, "{}", node.label)?;
    if let Some(id) = node.shared {
        if node.repeat {
            write!(f, "  #{id} (shared, evaluated once)")?;
            return Ok(());
        }
        write!(f, "  #{id}")?;
    }
    write!(f, "  [")?;
    // Input cardinality: the sum of the direct children's outputs (what the
    // operator actually consumed), inner nodes only.
    if !node.children.is_empty() {
        let known: Vec<usize> = node
            .children
            .iter()
            .filter_map(|c| c.output.map(|(n, _)| n))
            .collect();
        if known.len() == node.children.len() {
            write!(f, "in={}, ", known.iter().sum::<usize>())?;
        }
    }
    match node.output {
        Some((n, parts)) if parts > 1 => write!(f, "out={n} in {parts} parts")?,
        Some((n, _)) => write!(f, "out={n}")?,
        None => write!(f, "out=-")?,
    }
    if let Some(report) = &node.strategy {
        write!(f, ", {report}")?;
    }
    if let Some((builds, reuses)) = node.index_delta {
        write!(f, ", idx {builds} built/{reuses} reused")?;
    }
    if timed {
        if let Some(elapsed) = node.elapsed {
            write!(f, ", {:.2} ms", elapsed.as_secs_f64() * 1e3)?;
        }
    }
    write!(f, "]")
}

fn walk(
    node: &TraceNode,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    timed: bool,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    if is_root {
        line(node, f, timed)?;
        writeln!(f)?;
    } else {
        let branch = if is_last { "└─ " } else { "├─ " };
        write!(f, "{prefix}{branch}")?;
        line(node, f, timed)?;
        writeln!(f)?;
    }
    let child_prefix = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}   ")
    } else {
        format!("{prefix}│  ")
    };
    for (i, c) in node.children.iter().enumerate() {
        walk(
            c,
            &child_prefix,
            i + 1 == node.children.len(),
            false,
            timed,
            f,
        )?;
    }
    Ok(())
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        walk(&self.root, "", true, true, false, f)
    }
}

/// The wall-clock-annotated rendering of a [`QueryTrace`] (see
/// [`QueryTrace::timed`]).
pub struct TimedTrace<'a> {
    trace: &'a QueryTrace,
}

impl fmt::Display for TimedTrace<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "-- total {:.2} ms, {} worker thread(s) budgeted",
            self.trace.total.as_secs_f64() * 1e3,
            self.trace.threads
        )?;
        walk(&self.trace.root, "", true, true, true, f)
    }
}
