//! The cost-guided plan optimizer.
//!
//! [`super::compile_query`] produces a plan whose join operands appear in
//! **syntactic order** — whatever order the user wrote the conjuncts in.  This
//! pass rewrites that plan bottom-up, guided by a [`Statistics`] snapshot (or
//! uniform defaults when none is available):
//!
//! * **Join flattening + greedy cost ordering.**  Nested joins are flattened
//!   into one n-ary join set and re-ordered *cheapest-pair-first*: the two
//!   operands with the smallest estimated join cardinality open the fold, and
//!   each subsequent operand is the one minimizing the estimated size of the
//!   next intermediate.  Operands sharing columns with the accumulated prefix
//!   are preferred over cross products, so a conjunction written in a
//!   cross-product-first order (`S(x,y) ∧ S(z,w) ∧ S(y,z)`) evaluates as the
//!   chain `S(x,y) ⋈ S(y,z) ⋈ S(z,w)`.
//! * **Selection placement.**  Constraint atoms are detached from the join's
//!   merged selection and re-attached at the earliest fold position where all
//!   their variables are bound, so they prune intermediates as soon as they
//!   can and never bloat the closures of tuples they cannot yet constrain.
//! * **Complement pushdown.**  `¬(A ∪ B)` over leaf-like branches becomes
//!   `¬A ⋈ ¬B`: the per-branch complements are hash-consed (shared across the
//!   plan DAG and memoized by the evaluator) and the join prunes through
//!   cached contexts, where the monolithic complement would re-distribute the
//!   union's tuples from scratch.  Double complements were already folded at
//!   compile time.
//!
//! The rewrite is memoized on node identity and re-interns every node through
//! the compiler's hash-consing plan builder, so the invariant — structurally equal
//! sub-plans are pointer equal — survives optimization and the evaluator's
//! per-query memo table keeps firing.
//!
//! The cost model is deliberately small: a stored relation costs its tuple
//! count (default 8 when unknown); joining over a shared column divides the
//! pair count by the larger distinct-pin count of the two sides (default
//! halves it); a constraint atom halves its input; a union sums; a complement
//! is charged a small blow-up over its child.  Estimates only *order*
//! operands, so being wrong is never unsound — the property tests pin
//! optimized ≡ unoptimized on randomized formulas over both theories.

use super::stats::Statistics;
use super::{union_cols, Plan, PlanBuilder, PlanNode};
use crate::logic::{Term, Var};
use crate::theory::{Atom, Theory};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// How aggressively to rewrite compiled plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No rewriting: joins evaluate in syntactic order (the PR 2 baseline).
    None,
    /// Cost-guided rewriting: join flattening and greedy ordering, selection
    /// placement, and complement pushdown.
    #[default]
    Full,
}

/// Compilation configuration: optimization level and evaluator thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanConfig {
    /// The optimization level ([`OptLevel::Full`] by default).
    pub opt: OptLevel,
    /// Worker threads the evaluator may use for join partitioning and
    /// projection (1 = serial, the default).  Parallelism only engages on
    /// relations large enough to amortize the thread spawn; results are
    /// bit-identical to the serial path at any thread count.
    pub threads: usize,
    /// Whether intermediate results may stay **factorized** — union nodes
    /// hand their children's parts downstream as a lazy union-of-parts
    /// instead of eagerly absorbing into one DNF; joins and projections
    /// distribute over the parts and complements of unions become joins of
    /// part complements (`true`, the default).  `false` materializes every
    /// node eagerly — the pre-factorization evaluator, kept as the bench
    /// baseline.  Answers are identical either way: both modes materialize
    /// and canonically order at plan boundaries.
    pub factorize: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            opt: OptLevel::Full,
            threads: 1,
            factorize: true,
        }
    }
}

impl PlanConfig {
    /// The configuration reproducing the unoptimized serial evaluator.
    #[must_use]
    pub fn baseline() -> PlanConfig {
        PlanConfig {
            opt: OptLevel::None,
            threads: 1,
            factorize: false,
        }
    }

    /// This configuration with eager materialization at every node (the
    /// factorized evaluator's baseline; optimization level and thread count
    /// are kept).
    #[must_use]
    pub fn eager(self) -> PlanConfig {
        PlanConfig {
            factorize: false,
            ..self
        }
    }
}

/// Estimated rows of a stored relation absent statistics.
const DEFAULT_LEAF_ROWS: f64 = 8.0;
/// Selectivity charged per constraint atom applied to a bound prefix.
const ATOM_SELECTIVITY: f64 = 0.5;
/// Selectivity of one shared join column with no pin information.
const SHARED_COL_SELECTIVITY: f64 = 0.5;

/// The per-column envelope summary an estimate carries: what fraction of the
/// tuples have a two-sided constant envelope on the column, the value range
/// those envelopes span, and their average width.  Mirrors
/// [`super::stats::ColumnStats`] for one plan output.
#[derive(Clone, Copy, Debug)]
pub(super) struct ColBound {
    /// Fraction of tuples carrying a two-sided envelope (0..=1).
    frac: f64,
    /// Smallest lower endpoint across those envelopes.
    lo: f64,
    /// Largest upper endpoint across those envelopes.
    hi: f64,
    /// Average envelope width.
    avg_width: f64,
}

/// The cardinality estimate of a sub-plan: expected generalized-tuple count
/// plus, per column, the number of distinct constants the column is pinned to
/// and the envelope summary (each absent when unknown), plus the number of
/// factorized **parts** the factorized evaluator would hold the node in
/// (1 = materialized; >1 only at and downstream of union nodes).
#[derive(Clone, Debug)]
pub(super) struct Est {
    pub rows: f64,
    pub distinct: BTreeMap<Var, f64>,
    pub bounds: BTreeMap<Var, ColBound>,
    pub parts: usize,
}

impl Est {
    fn leaf(rows: f64) -> Est {
        Est {
            rows,
            distinct: BTreeMap::new(),
            bounds: BTreeMap::new(),
            parts: 1,
        }
    }
}

/// Interval-overlap selectivity of one shared column whose two sides carry
/// envelope summaries: the probability two random envelopes (average widths
/// `wa`, `wb`, lower endpoints spread over the union span) overlap, charged
/// output-proportionally — this is what the join's sorted-endpoint index
/// leaves for the compatibility filter.  Tuples without envelopes on either
/// side fall back to the uninformed shared-column selectivity.
fn overlap_selectivity(a: &ColBound, b: &ColBound) -> f64 {
    let span = (a.hi.max(b.hi) - a.lo.min(b.lo)).max(1e-9);
    let overlap = ((a.avg_width + b.avg_width) / span).min(1.0);
    let both = (a.frac * b.frac).clamp(0.0, 1.0);
    both * overlap + (1.0 - both) * SHARED_COL_SELECTIVITY
}

/// Estimated cardinality of joining `a` and `b` (given their column sets), and
/// the merged estimate.
fn join_est(a_cols: &BTreeSet<Var>, a: &Est, b_cols: &BTreeSet<Var>, b: &Est) -> Est {
    let mut selectivity = 1.0;
    let mut distinct = a.distinct.clone();
    for v in a_cols.intersection(b_cols) {
        let da = a.distinct.get(v).copied();
        let db = b.distinct.get(v).copied();
        let s = match (da, db) {
            (Some(da), Some(db)) => 1.0 / da.max(db).max(1.0),
            // No pins on one side: when both sides carry envelope summaries
            // the interval index prunes to the overlap-feasible pairs, so
            // charge the overlap probability instead of the uninformed half.
            _ => match (a.bounds.get(v), b.bounds.get(v)) {
                (Some(ba), Some(bb)) => overlap_selectivity(ba, bb),
                _ => SHARED_COL_SELECTIVITY,
            },
        };
        selectivity *= s;
    }
    for (v, db) in &b.distinct {
        distinct
            .entry(v.clone())
            .and_modify(|da| *da = da.min(*db))
            .or_insert(*db);
    }
    // Merged envelopes: keep the narrower summary per column (the joined
    // tuples satisfy both sides' constraints).
    let mut bounds = a.bounds.clone();
    for (v, bb) in &b.bounds {
        bounds
            .entry(v.clone())
            .and_modify(|ba| {
                if bb.avg_width < ba.avg_width {
                    *ba = *bb;
                }
            })
            .or_insert(*bb);
    }
    // Joins distribute over factorized parts (capped like the evaluator:
    // the side with more parts is merged when the product would overflow).
    let parts = if a.parts * b.parts <= super::MAX_PARTS {
        a.parts * b.parts
    } else {
        a.parts.min(b.parts)
    };
    Est {
        rows: (a.rows * b.rows * selectivity).max(0.0),
        distinct,
        bounds,
        parts,
    }
}

/// Estimates a plan's output cardinality, memoized over the plan DAG.
pub(super) fn estimate_plan<T: Theory>(
    plan: &Plan<T>,
    stats: &Statistics,
    memo: &mut HashMap<usize, Est>,
) -> Est {
    let key = Arc::as_ptr(&plan.0) as usize;
    if let Some(cached) = memo.get(&key) {
        return cached.clone();
    }
    let est = match &plan.0.node {
        PlanNode::Empty => Est::leaf(0.0),
        PlanNode::Universal => Est::leaf(1.0),
        PlanNode::Select(atoms) => Est::leaf(ATOM_SELECTIVITY.powi(atoms.len() as i32 - 1)),
        PlanNode::Rename { name, to } => match stats.relation(name) {
            None => Est::leaf(DEFAULT_LEAF_ROWS),
            Some(rs) => {
                let mut distinct = BTreeMap::new();
                let mut bounds = BTreeMap::new();
                for (i, var) in to.iter().enumerate() {
                    if let Some(col) = rs.columns.get(i) {
                        if col.distinct_pins > 0 && col.pinned == rs.tuples {
                            distinct.insert(var.clone(), col.distinct_pins as f64);
                        }
                        if col.bounded > 0 && rs.tuples > 0 {
                            bounds.insert(
                                var.clone(),
                                ColBound {
                                    frac: col.bounded as f64 / rs.tuples as f64,
                                    lo: col.lo,
                                    hi: col.hi,
                                    avg_width: col.avg_width,
                                },
                            );
                        }
                    }
                }
                Est {
                    rows: rs.tuples as f64,
                    distinct,
                    bounds,
                    parts: 1,
                }
            }
        },
        PlanNode::Scan { name, args } => {
            let rows = stats
                .relation(name)
                .map_or(DEFAULT_LEAF_ROWS, |rs| rs.tuples as f64);
            // Constant arguments and repeated variables act as selections.
            let mut seen: BTreeSet<&Var> = BTreeSet::new();
            let mut constrained = 0i32;
            for a in args {
                match a {
                    Term::Const(_) => constrained += 1,
                    Term::Var(v) => {
                        if !seen.insert(v) {
                            constrained += 1;
                        }
                    }
                }
            }
            Est::leaf(rows * ATOM_SELECTIVITY.powi(constrained))
        }
        PlanNode::Join(children) => {
            let mut acc: Option<(BTreeSet<Var>, Est)> = None;
            for child in children {
                let cols: BTreeSet<Var> = child.cols().iter().cloned().collect();
                let est = estimate_plan(child, stats, memo);
                acc = Some(match acc {
                    None => (cols, est),
                    Some((acc_cols, acc_est)) => {
                        let joined = join_est(&acc_cols, &acc_est, &cols, &est);
                        (acc_cols.union(&cols).cloned().collect(), joined)
                    }
                });
            }
            acc.map_or_else(|| Est::leaf(1.0), |(_, e)| e)
        }
        PlanNode::Union(children) => {
            let mut rows = 0.0;
            let mut parts = 0usize;
            for child in children {
                let child_est = estimate_plan(child, stats, memo);
                rows += child_est.rows;
                parts += child_est.parts;
            }
            // The factorized evaluator holds the union's children as parts,
            // merging eagerly only when the cap overflows.
            let mut est = Est::leaf(rows);
            est.parts = if parts <= super::MAX_PARTS { parts } else { 1 };
            est
        }
        PlanNode::Complement(input) => {
            let inner = estimate_plan(input, stats, memo);
            // Complementing a t-tuple DNF conjoins t atom-wise negations; the
            // result is usually comparable in size with a modest blow-up.
            Est::leaf(inner.rows * 1.5 + 1.0)
        }
        PlanNode::Project { input, eliminate } => {
            let mut inner = estimate_plan(input, stats, memo);
            for v in eliminate {
                inner.distinct.remove(v);
                inner.bounds.remove(v);
            }
            inner
        }
    };
    memo.insert(key, est.clone());
    est
}

/// Rewrites a plan bottom-up under the cost model; see the module docs.
/// The rewrite is memoized on node identity (DAG sharing is preserved) and
/// every produced node is re-interned through `builder`.
pub(super) fn optimize_plan<T: Theory>(
    plan: &Plan<T>,
    stats: &Statistics,
    builder: &mut PlanBuilder<T>,
) -> Plan<T> {
    let mut memo: HashMap<usize, Plan<T>> = HashMap::new();
    let mut est_memo: HashMap<usize, Est> = HashMap::new();
    rewrite(plan, stats, builder, &mut memo, &mut est_memo)
}

fn rewrite<T: Theory>(
    plan: &Plan<T>,
    stats: &Statistics,
    builder: &mut PlanBuilder<T>,
    memo: &mut HashMap<usize, Plan<T>>,
    est_memo: &mut HashMap<usize, Est>,
) -> Plan<T> {
    let key = Arc::as_ptr(&plan.0) as usize;
    if let Some(done) = memo.get(&key) {
        return done.clone();
    }
    let out = match &plan.0.node {
        PlanNode::Empty
        | PlanNode::Universal
        | PlanNode::Select(_)
        | PlanNode::Rename { .. }
        | PlanNode::Scan { .. } => plan.clone(),
        PlanNode::Join(children) => {
            let kids: Vec<Plan<T>> = children
                .iter()
                .map(|c| rewrite(c, stats, builder, memo, est_memo))
                .collect();
            order_join(kids, stats, builder, est_memo)
        }
        PlanNode::Union(children) => {
            let kids: Vec<Plan<T>> = children
                .iter()
                .map(|c| rewrite(c, stats, builder, memo, est_memo))
                .collect();
            builder.union_of(kids)
        }
        PlanNode::Complement(input) => {
            let inner = rewrite(input, stats, builder, memo, est_memo);
            let pushed = match &inner.0.node {
                // ¬(A ∪ B) → ¬A ⋈ ¬B over leaf-like branches: the branch
                // complements become shared, memoizable nodes and the join
                // prunes through cached contexts.
                PlanNode::Union(branches)
                    if branches.len() >= 2 && branches.iter().all(|b| is_leafish(b)) =>
                {
                    let comps: Vec<Plan<T>> = branches
                        .iter()
                        .map(|b| builder.complement_of(b.clone()))
                        .collect();
                    Some(order_join(comps, stats, builder, est_memo))
                }
                _ => None,
            };
            pushed.unwrap_or_else(|| builder.complement_of(inner))
        }
        PlanNode::Project { input, eliminate } => {
            let inner = rewrite(input, stats, builder, memo, est_memo);
            builder.project_of(inner, eliminate)
        }
    };
    memo.insert(key, out.clone());
    out
}

/// Whether a plan is cheap to complement independently (a leaf or selection).
fn is_leafish<T: Theory>(plan: &Plan<T>) -> bool {
    matches!(
        plan.0.node,
        PlanNode::Select(_) | PlanNode::Rename { .. } | PlanNode::Scan { .. }
    )
}

/// Builds a join over `children` with greedy cost ordering and selection
/// placement (the children are already optimized).
fn order_join<T: Theory>(
    children: Vec<Plan<T>>,
    stats: &Statistics,
    builder: &mut PlanBuilder<T>,
    est_memo: &mut HashMap<usize, Est>,
) -> Plan<T> {
    // Flatten nested joins and detach selection atoms.
    let mut atoms: Vec<T::A> = Vec::new();
    let mut ops: Vec<Plan<T>> = Vec::new();
    let mut stack: Vec<Plan<T>> = children.into_iter().rev().collect();
    let mut saw_empty = false;
    while let Some(c) = stack.pop() {
        match &c.0.node {
            PlanNode::Join(inner) => {
                for g in inner.iter().rev() {
                    stack.push(g.clone());
                }
            }
            PlanNode::Select(sel) => {
                for a in sel {
                    if !atoms.contains(a) {
                        atoms.push(a.clone());
                    }
                }
            }
            PlanNode::Universal => {}
            PlanNode::Empty => saw_empty = true,
            _ => {
                if !ops.iter().any(|k| k.ptr_eq(&c)) {
                    ops.push(c);
                }
            }
        }
    }
    let select_cols: Vec<Var> = atoms
        .iter()
        .flat_map(Atom::vars)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    if saw_empty {
        let mut cols = union_cols(&ops);
        for v in &select_cols {
            if !cols.contains(v) {
                cols.push(v.clone());
            }
        }
        return builder.empty(cols);
    }
    if ops.is_empty() {
        return if atoms.is_empty() {
            builder.universal(Vec::new())
        } else {
            builder.select(atoms)
        };
    }
    if ops.len() == 1 {
        // One relational operand: keep the compile-time shape (selection
        // first, pruning the operand's tuples through its context).
        let op = ops.pop().expect("length checked");
        if atoms.is_empty() {
            return op;
        }
        let sel = builder.select(atoms);
        let cols = union_cols(&[sel.clone(), op.clone()]);
        return builder.intern(PlanNode::Join(vec![sel, op]), cols);
    }

    // Greedy ordering: cheapest pair first, then always the operand that
    // minimizes the next intermediate estimate.
    let ests: Vec<(BTreeSet<Var>, Est)> = ops
        .iter()
        .map(|p| {
            (
                p.cols().iter().cloned().collect(),
                estimate_plan(p, stats, est_memo),
            )
        })
        .collect();
    // Cost of a step: primarily the estimated intermediate cardinality, with
    // the candidate-pair count (the work the join actually performs) breaking
    // ties — a 2×2 pair beats a 2×20 pair that happens to estimate equal.
    let step_cost = |a_cols: &BTreeSet<Var>, a: &Est, b_cols: &BTreeSet<Var>, b: &Est| {
        (join_est(a_cols, a, b_cols, b).rows, a.rows * b.rows)
    };
    let better = |a: (f64, f64), b: (f64, f64)| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
    let mut remaining: Vec<usize> = (0..ops.len()).collect();
    let mut seq: Vec<usize> = Vec::new();
    let (mut first, mut second, mut best) = (0usize, 1usize, (f64::INFINITY, f64::INFINITY));
    for (ai, &i) in remaining.iter().enumerate() {
        for &j in remaining.iter().skip(ai + 1) {
            let cost = step_cost(&ests[i].0, &ests[i].1, &ests[j].0, &ests[j].1);
            if better(cost, best) {
                best = cost;
                // The smaller operand opens the fold.
                if ests[i].1.rows <= ests[j].1.rows {
                    (first, second) = (i, j);
                } else {
                    (first, second) = (j, i);
                }
            }
        }
    }
    seq.push(first);
    seq.push(second);
    remaining.retain(|&k| k != first && k != second);
    let mut acc_cols: BTreeSet<Var> = ests[first].0.union(&ests[second].0).cloned().collect();
    let mut acc_est = join_est(
        &ests[first].0,
        &ests[first].1,
        &ests[second].0,
        &ests[second].1,
    );
    while !remaining.is_empty() {
        let mut pick = 0usize;
        let mut pick_cost = (f64::INFINITY, f64::INFINITY);
        for (slot, &k) in remaining.iter().enumerate() {
            let cost = step_cost(&acc_cols, &acc_est, &ests[k].0, &ests[k].1);
            if better(cost, pick_cost) {
                pick_cost = cost;
                pick = slot;
            }
        }
        let k = remaining.remove(pick);
        acc_est = join_est(&acc_cols, &acc_est, &ests[k].0, &ests[k].1);
        acc_cols.extend(ests[k].0.iter().cloned());
        seq.push(k);
    }

    // Interleave the selection atoms at their earliest applicable position.
    let mut pending: Vec<T::A> = atoms;
    let mut ordered: Vec<Plan<T>> = Vec::new();
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    // Ground atoms (and atoms covered by the very first operand) lead the
    // fold, mirroring the compile-time selection-first shape.
    for (step, &k) in seq.iter().enumerate() {
        let next_bound: BTreeSet<Var> = if step == 0 {
            ests[k].0.clone()
        } else {
            bound.union(&ests[k].0).cloned().collect()
        };
        let applicable: Vec<T::A> = pending
            .iter()
            .filter(|a| a.vars().iter().all(|v| next_bound.contains(v)))
            .cloned()
            .collect();
        pending.retain(|a| !applicable.contains(a));
        if step == 0 && !applicable.is_empty() {
            ordered.push(builder.select(applicable));
            ordered.push(ops[k].clone());
        } else {
            ordered.push(ops[k].clone());
            if !applicable.is_empty() {
                ordered.push(builder.select(applicable));
            }
        }
        bound = next_bound;
    }
    if !pending.is_empty() {
        // Atoms over variables no operand binds: joined in at the end, where
        // they extend the result cylinder without bloating intermediates.
        ordered.push(builder.select(pending));
    }
    let cols = union_cols(&ordered);
    builder.intern(PlanNode::Join(ordered), cols)
}

#[cfg(test)]
mod tests {
    use super::super::{compile_query, compile_query_with, eval_query_expand};
    use super::*;
    use crate::dense::{DenseAtom, DenseOrder};
    use crate::logic::Formula;
    use crate::relation::{Instance, Relation};
    use crate::schema::Schema;
    use frdb_num::Rat;

    type F = Formula<DenseAtom>;

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    /// A scrambled chain: `∃y,z. S(x,y) ∧ S(z,w) ∧ S(y,z)` — the syntactic
    /// order opens with a cross product.
    fn scrambled() -> F {
        Formula::exists(
            ["y", "z"],
            Formula::conj([
                Formula::rel("S", [Term::var("x"), Term::var("y")]),
                Formula::rel("S", [Term::var("z"), Term::var("w")]),
                Formula::rel("S", [Term::var("y"), Term::var("z")]),
            ]),
        )
    }

    fn chain_instance(n: i64) -> Instance<DenseOrder> {
        let mut inst = Instance::new(Schema::from_pairs([("S", 2)]));
        let points: Vec<Vec<Rat>> = (0..n)
            .map(|i| vec![Rat::from_i64(i), Rat::from_i64(i + 1)])
            .collect();
        inst.set("S", Relation::from_points(vec![v("x"), v("y")], points))
            .unwrap();
        inst
    }

    #[test]
    fn scrambled_joins_are_reordered_into_a_chain() {
        let unopt = compile_query_with::<DenseOrder>(
            &scrambled(),
            &[v("x"), v("w")],
            &PlanConfig::baseline(),
        );
        let opt = compile_query::<DenseOrder>(&scrambled(), &[v("x"), v("w")]);
        // Syntactic order keeps the cross product first; the optimizer joins
        // along shared columns.
        assert_eq!(
            unopt.plan().to_string(),
            "π-{y,z}(S(x, y) ⋈ S(z, w) ⋈ S(y, z))"
        );
        assert_eq!(
            opt.plan().to_string(),
            "π-{y,z}(S(x, y) ⋈ S(y, z) ⋈ S(z, w))"
        );
        // Both agree with the expand baseline.
        let inst = chain_instance(6);
        let expand = eval_query_expand(&scrambled(), &[v("x"), v("w")], &inst).unwrap();
        assert!(unopt.eval(&inst).unwrap().equivalent(&expand));
        assert!(opt.eval(&inst).unwrap().equivalent(&expand));
    }

    #[test]
    fn selections_are_placed_where_their_variables_bind() {
        // `∃y. S(x,y) ∧ S(y,z) ∧ z < 2`: the constraint mentions the last
        // join variable, so the optimizer defers it to the fold position that
        // binds z instead of bloating the first intermediate.
        let q: F = Formula::exists(
            ["y"],
            Formula::conj([
                Formula::rel("S", [Term::var("x"), Term::var("y")]),
                Formula::rel("S", [Term::var("y"), Term::var("z")]),
                Formula::Atom(DenseAtom::lt(Term::var("z"), Term::cst(4))),
            ]),
        );
        let unopt =
            compile_query_with::<DenseOrder>(&q, &[v("x"), v("z")], &PlanConfig::baseline());
        let opt = compile_query::<DenseOrder>(&q, &[v("x"), v("z")]);
        assert_eq!(
            unopt.plan().to_string(),
            "π-{y}(σ[z < 4] ⋈ S(x, y) ⋈ S(y, z))"
        );
        assert_eq!(
            opt.plan().to_string(),
            "π-{y}(S(x, y) ⋈ S(y, z) ⋈ σ[z < 4])"
        );
        let inst = chain_instance(5);
        let a = opt.eval(&inst).unwrap();
        let b = unopt.eval(&inst).unwrap();
        assert!(a.equivalent(&b));
        assert!(a.contains(&[Rat::from_i64(0), Rat::from_i64(2)]));
        assert!(!a.contains(&[Rat::from_i64(2), Rat::from_i64(4)]));
    }

    #[test]
    fn complements_push_through_leaf_unions() {
        // ¬(R(x) ∨ S(x, y)) → ¬R(x) ⋈ ¬S(x, y): per-branch complements are
        // shared, memoizable nodes.
        let q: F = Formula::rel("R", [Term::var("x")])
            .or(Formula::rel("S", [Term::var("x"), Term::var("y")]))
            .not();
        let opt = compile_query::<DenseOrder>(&q, &[v("x"), v("y")]);
        assert_eq!(opt.plan().to_string(), "(¬R(x) ⋈ ¬S(x, y))");
        let mut inst = chain_instance(3);
        inst.declare("R", 1).unwrap();
        inst.set(
            "R",
            Relation::from_points(vec![v("x")], vec![vec![Rat::from_i64(0)]]),
        )
        .unwrap();
        let unopt =
            compile_query_with::<DenseOrder>(&q, &[v("x"), v("y")], &PlanConfig::baseline());
        assert!(opt
            .eval(&inst)
            .unwrap()
            .equivalent(&unopt.eval(&inst).unwrap()));
    }

    #[test]
    fn statistics_pick_the_cheapest_pair_first() {
        // A is much larger than B and C; the greedy order must open with the
        // (B, C) pair and leave A last, whatever the syntactic order says.
        let q: F = Formula::exists(
            ["y", "z"],
            Formula::conj([
                Formula::rel("A", [Term::var("x"), Term::var("y")]),
                Formula::rel("B", [Term::var("y"), Term::var("z")]),
                Formula::rel("C", [Term::var("z"), Term::var("w")]),
            ]),
        );
        let mut inst: Instance<DenseOrder> =
            Instance::new(Schema::from_pairs([("A", 2), ("B", 2), ("C", 2)]));
        let points = |n: i64| -> Vec<Vec<Rat>> {
            (0..n)
                .map(|i| vec![Rat::from_i64(i), Rat::from_i64(i + 1)])
                .collect()
        };
        inst.set("A", Relation::from_points(vec![v("x"), v("y")], points(20)))
            .unwrap();
        inst.set("B", Relation::from_points(vec![v("x"), v("y")], points(2)))
            .unwrap();
        inst.set("C", Relation::from_points(vec![v("x"), v("y")], points(2)))
            .unwrap();
        let compiled = compile_query::<DenseOrder>(&q, &[v("x"), v("w")]);
        let tuned = compiled.optimized_for(&Statistics::collect(&inst));
        assert_eq!(
            tuned.plan().to_string(),
            "π-{y,z}(B(y, z) ⋈ C(z, w) ⋈ A(x, y))"
        );
        assert!(tuned
            .eval(&inst)
            .unwrap()
            .equivalent(&compiled.eval(&inst).unwrap()));
    }

    #[test]
    fn optimization_preserves_hash_consing_across_shared_subplans() {
        // The iff expansion duplicates both sides; the optimized plan must
        // stay a DAG with single copies.
        let phi: F = Formula::exists(["y"], Formula::rel("S", [Term::var("x"), Term::var("y")]));
        let psi: F = Formula::rel("R", [Term::var("x")]);
        let q = phi.iff(psi);
        let unopt = compile_query_with::<DenseOrder>(&q, &[v("x")], &PlanConfig::baseline());
        let opt = compile_query::<DenseOrder>(&q, &[v("x")]);
        assert!(opt.plan().node_count() <= unopt.plan().node_count());
    }
}
