//! Encodings of finitely representable databases.
//!
//! Two encodings from the paper are implemented:
//!
//! * the **standard string encoding** of Section 4.2 (Example 4.11), which defines the
//!   *size* of a database instance — the input-size parameter of every data-complexity
//!   statement (Theorems 5.2, 6.2, 6.6);
//! * the **finite relational encoding** of Section 6 (Example 6.11, Lemma 6.12): a
//!   cover of prime tuples is flattened into a finite relation of rationals, using
//!   `(flag, value)` pairs to encode both numbers and the special symbols
//!   `= − + < > ?`.  The decoding direction rebuilds an equivalent constraint
//!   relation, which is the round-trip at the heart of the DATALOG¬ = PTIME proof.
//!
//! The module also provides the active-domain automorphism of Lemma 6.13, mapping the
//! rationals occurring in an instance order-preservingly onto small integers.

use crate::dense::{DenseAtom, DenseOrder};
use crate::logic::Var;
use crate::normal::{cover, Bound, PairRel, PrimeTuple};
use crate::relation::{Instance, Relation};
use frdb_num::{BigInt, Rat};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Standard string encoding (§4.2)
// ---------------------------------------------------------------------------

fn encode_rat(r: &Rat, out: &mut String) {
    // Rationals are encoded as pairs (fractions) of naturals in binary notation,
    // with an explicit sign, following Example 4.11's "(1011, 100)" style.
    if r.numer().is_negative() {
        out.push('-');
    }
    let num = r.numer().abs();
    let _ = write!(out, "({:b},{:b})", BigIntBits(&num), BigIntBits(r.denom()));
}

/// Helper displaying a non-negative [`BigInt`] in binary.
struct BigIntBits<'a>(&'a BigInt);

impl std::fmt::Binary for BigIntBits<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let two = BigInt::from(2i64);
        let mut n = self.0.abs();
        while !n.is_zero() {
            let (q, r) = n.div_rem(&two);
            digits.push(if r.is_zero() { '0' } else { '1' });
            n = q;
        }
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Errors from producing the standard string encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A generalized tuple mentions a variable that is not among the
    /// relation's declared columns, so it has no index in the encoding.
    UndeclaredVariable {
        /// The relation being encoded.
        relation: String,
        /// The offending variable.
        variable: String,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::UndeclaredVariable { relation, variable } => write!(
                f,
                "relation {relation} mentions variable {variable} outside its declared columns"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

fn encode_atom(
    atom: &DenseAtom,
    relation: &str,
    var_index: &BTreeMap<Var, usize>,
    out: &mut String,
) -> Result<(), EncodeError> {
    let term =
        |t: &crate::logic::Term, out: &mut String| -> Result<(), EncodeError> {
            match t {
                crate::logic::Term::Var(v) => {
                    // A variable outside the declared columns has no index; encoding
                    // it as column 0 would silently corrupt `database_size`.
                    let idx = var_index.get(v).copied().ok_or_else(|| {
                        EncodeError::UndeclaredVariable {
                            relation: relation.to_string(),
                            variable: v.to_string(),
                        }
                    })?;
                    let _ = write!(out, "x{idx:b}");
                    Ok(())
                }
                crate::logic::Term::Const(c) => {
                    encode_rat(c, out);
                    Ok(())
                }
            }
        };
    out.push('(');
    term(&atom.lhs, out)?;
    out.push(match atom.op {
        crate::dense::CmpOp::Lt => '<',
        crate::dense::CmpOp::Le => '≤',
        crate::dense::CmpOp::Eq => '=',
    });
    term(&atom.rhs, out)?;
    out.push(')');
    Ok(())
}

/// Encodes a relation in the standard alphabet of Section 4.2:
/// `R[enc(φ₁)] ∨ … ∨ [enc(φₗ)]*`.
///
/// # Errors
/// Returns an error if a tuple mentions a variable outside the relation's columns.
pub fn encode_relation(name: &str, relation: &Relation<DenseOrder>) -> Result<String, EncodeError> {
    let var_index: BTreeMap<Var, usize> = relation
        .vars()
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let mut out = String::new();
    out.push_str(name);
    for (i, conj) in relation.tuples().iter().enumerate() {
        if i > 0 {
            out.push('∨');
        }
        out.push('[');
        for (j, atom) in conj.atoms().iter().enumerate() {
            if j > 0 {
                out.push('∧');
            }
            encode_atom(atom, name, &var_index, &mut out)?;
        }
        out.push(']');
    }
    out.push('*');
    Ok(out)
}

/// Encodes a whole instance: `enc(I(R₁))* … *enc(I(Rₙ))**` with relations taken in
/// schema (name) order.
///
/// # Errors
/// Returns an error if a stored tuple mentions a variable outside its relation's
/// columns.
pub fn encode_instance(instance: &Instance<DenseOrder>) -> Result<String, EncodeError> {
    let mut out = String::new();
    for (name, _) in instance.schema().iter() {
        if let Some(rel) = instance.get(name) {
            out.push_str(&encode_relation(name.as_str(), &rel)?);
            out.push('*');
        }
    }
    out.push('*');
    Ok(out)
}

/// The size of a database instance: the length of its standard encoding
/// (Section 4.2).  All data-complexity benchmarks report against this measure.
///
/// # Errors
/// As for [`encode_instance`].
pub fn database_size(instance: &Instance<DenseOrder>) -> Result<usize, EncodeError> {
    Ok(encode_instance(instance)?.chars().count())
}

// ---------------------------------------------------------------------------
// Finite relational encoding of covers (§6, Example 6.11)
// ---------------------------------------------------------------------------

/// The `(flag, value)` pair encoding of Example 6.11: flag `0` marks a rational
/// number, flag `1` marks a special symbol.
fn encode_symbolic(special: i64) -> [Rat; 2] {
    [Rat::one(), Rat::from_i64(special)]
}

fn encode_number(v: &Rat) -> [Rat; 2] {
    [Rat::zero(), v.clone()]
}

const SYM_EQ: i64 = 0;
const SYM_NEG_INF: i64 = 1;
const SYM_POS_INF: i64 = 2;
const SYM_LT: i64 = 3;
const SYM_GT: i64 = 4;
const SYM_UNRELATED: i64 = 5;

/// Encodes a prime tuple of arity `k` into a flat vector of `2·(2k + k²)` rationals:
/// the bounds `l₁,u₁,…,lₖ,uₖ` followed by the `µ` matrix row by row, each entry as a
/// `(flag, value)` pair (Example 6.11).
#[must_use]
pub fn encode_prime_tuple(tuple: &PrimeTuple) -> Vec<Rat> {
    let k = tuple.arity();
    let mut out = Vec::with_capacity(2 * (2 * k + k * k));
    for i in 0..k {
        match tuple.lower(i) {
            Bound::Infinite => out.extend(encode_symbolic(SYM_NEG_INF)),
            Bound::Finite(v) => out.extend(encode_number(v)),
        }
        match tuple.upper(i) {
            Bound::Infinite => out.extend(encode_symbolic(SYM_POS_INF)),
            Bound::Finite(v) => out.extend(encode_number(v)),
        }
    }
    for i in 0..k {
        for j in 0..k {
            let sym = match tuple.pair(i, j) {
                PairRel::Eq => SYM_EQ,
                PairRel::Lt => SYM_LT,
                PairRel::Gt => SYM_GT,
                PairRel::Unrelated => SYM_UNRELATED,
            };
            out.extend(encode_symbolic(sym));
        }
    }
    out
}

/// Errors from decoding the finite relational encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The flat vector has the wrong length for the declared arity.
    WrongLength {
        /// Expected length.
        expected: usize,
        /// Actual length.
        found: usize,
    },
    /// An entry had an unknown flag or special-symbol code.
    BadSymbol(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::WrongLength { expected, found } => {
                write!(f, "encoded tuple has length {found}, expected {expected}")
            }
            DecodeError::BadSymbol(s) => write!(f, "bad symbol in encoded tuple: {s}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a flat vector produced by [`encode_prime_tuple`] back into a conjunction of
/// dense-order atoms over the given column variables.
///
/// # Errors
/// Returns an error if the vector has the wrong length or contains invalid symbols.
#[allow(clippy::needless_range_loop)] // `i` indexes `vars` and the encoded pairs in lockstep
pub fn decode_prime_tuple(vars: &[Var], data: &[Rat]) -> Result<Vec<DenseAtom>, DecodeError> {
    let k = vars.len();
    let expected = 2 * (2 * k + k * k);
    if data.len() != expected {
        return Err(DecodeError::WrongLength {
            expected,
            found: data.len(),
        });
    }
    let pair = |idx: usize| -> (&Rat, &Rat) { (&data[2 * idx], &data[2 * idx + 1]) };
    let mut atoms = Vec::new();
    for i in 0..k {
        let (lflag, lval) = pair(2 * i);
        let (uflag, uval) = pair(2 * i + 1);
        let lower = if lflag.is_zero() {
            Some(lval.clone())
        } else {
            None
        };
        let upper = if uflag.is_zero() {
            Some(uval.clone())
        } else {
            None
        };
        let x = crate::logic::Term::Var(vars[i].clone());
        match (lower, upper) {
            (Some(l), Some(u)) if l == u => {
                atoms.push(DenseAtom::eq(x, crate::logic::Term::Const(l)));
            }
            (l, u) => {
                if let Some(l) = l {
                    atoms.push(DenseAtom::lt(crate::logic::Term::Const(l), x.clone()));
                }
                if let Some(u) = u {
                    atoms.push(DenseAtom::lt(x, crate::logic::Term::Const(u)));
                }
            }
        }
    }
    for i in 0..k {
        for j in 0..k {
            let (flag, val) = pair(2 * k + i * k + j);
            if flag.is_zero() {
                return Err(DecodeError::BadSymbol(format!(
                    "matrix entry ({i},{j}) is a number"
                )));
            }
            if i >= j {
                continue;
            }
            let xi = crate::logic::Term::Var(vars[i].clone());
            let xj = crate::logic::Term::Var(vars[j].clone());
            // A symbol code must be a small integer; anything else (a fraction,
            // or a numerator outside `i64`) is a malformed input, not the `-1`
            // sentinel the old fallback silently collapsed it to.
            if !val.is_integer() {
                return Err(DecodeError::BadSymbol(format!(
                    "non-integer symbol code {val} at matrix entry ({i},{j})"
                )));
            }
            let code = val.numer().to_i64().ok_or_else(|| {
                DecodeError::BadSymbol(format!(
                    "symbol code {val} at matrix entry ({i},{j}) overflows i64"
                ))
            })?;
            match code {
                SYM_EQ => atoms.push(DenseAtom::eq(xi, xj)),
                SYM_LT => atoms.push(DenseAtom::lt(xi, xj)),
                SYM_GT => atoms.push(DenseAtom::lt(xj, xi)),
                SYM_UNRELATED => {}
                other => {
                    return Err(DecodeError::BadSymbol(format!(
                        "unknown symbol code {other} at matrix entry ({i},{j})"
                    )))
                }
            }
        }
    }
    Ok(atoms)
}

/// Encodes a relation as a finite set of flat rational vectors: one per prime tuple of
/// a cover (the relational representation of Lemma 6.12).
#[must_use]
pub fn encode_relation_cover(relation: &Relation<DenseOrder>) -> Vec<Vec<Rat>> {
    cover(relation).iter().map(encode_prime_tuple).collect()
}

/// Decodes a finite set of flat vectors back into a constraint relation over the given
/// columns.
///
/// # Errors
/// Returns an error if any vector is malformed.
pub fn decode_relation_cover(
    vars: &[Var],
    rows: &[Vec<Rat>],
) -> Result<Relation<DenseOrder>, DecodeError> {
    let mut dnf = Vec::with_capacity(rows.len());
    for row in rows {
        dnf.push(decode_prime_tuple(vars, row)?);
    }
    Ok(Relation::from_dnf(vars.to_vec(), dnf))
}

// ---------------------------------------------------------------------------
// Active-domain automorphism (Lemma 6.13)
// ---------------------------------------------------------------------------

/// The order-preserving map from the active domain of an instance to small integers
/// used in the proof of Theorem 6.6 (Lemma 6.13): `0 ↦ 0`, the i-th smallest positive
/// constant `↦ i`, the i-th largest negative constant `↦ −i`.
#[derive(Clone, Debug, Default)]
pub struct AdomMap {
    forward: BTreeMap<Rat, BigInt>,
    backward: BTreeMap<BigInt, Rat>,
}

impl AdomMap {
    /// Builds the map for an instance's active domain.
    #[must_use]
    pub fn for_instance(instance: &Instance<DenseOrder>) -> Self {
        Self::for_constants(instance.active_domain())
    }

    /// Builds the map for an explicit set of constants.
    #[must_use]
    pub fn for_constants(constants: impl IntoIterator<Item = Rat>) -> Self {
        let mut positives: Vec<Rat> = Vec::new();
        let mut negatives: Vec<Rat> = Vec::new();
        let mut has_zero = false;
        for c in constants {
            if c.is_zero() {
                has_zero = true;
            } else if c > Rat::zero() {
                positives.push(c);
            } else {
                negatives.push(c);
            }
        }
        positives.sort();
        positives.dedup();
        negatives.sort();
        negatives.dedup();
        let mut forward = BTreeMap::new();
        let mut backward = BTreeMap::new();
        if has_zero {
            forward.insert(Rat::zero(), BigInt::zero());
            backward.insert(BigInt::zero(), Rat::zero());
        }
        for (i, c) in positives.into_iter().enumerate() {
            let v = BigInt::from((i + 1) as i64);
            forward.insert(c.clone(), v.clone());
            backward.insert(v, c);
        }
        for (i, c) in negatives.into_iter().rev().enumerate() {
            let v = BigInt::from(-((i + 1) as i64));
            forward.insert(c.clone(), v.clone());
            backward.insert(v, c);
        }
        AdomMap { forward, backward }
    }

    /// Maps an active-domain constant to its integer image (identity outside the
    /// domain, matching "the automorphism is the identity elsewhere up to order").
    #[must_use]
    pub fn apply(&self, c: &Rat) -> Rat {
        self.forward
            .get(c)
            .map(|i| Rat::from(i.clone()))
            .unwrap_or_else(|| c.clone())
    }

    /// Maps an integer back to the active-domain constant it encodes.
    #[must_use]
    pub fn invert(&self, i: &BigInt) -> Option<Rat> {
        self.backward.get(i).cloned()
    }

    /// The number of mapped constants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The map is order preserving on the active domain — the property that makes it
    /// usable as (the restriction of) an automorphism of `(Q, ≤)` in Lemma 6.13.
    #[must_use]
    pub fn is_order_preserving(&self) -> bool {
        let entries: Vec<_> = self.forward.iter().collect();
        entries.windows(2).all(|w| w[0].1 < w[1].1)
    }

    /// Applies the map to every constant of an instance.
    #[must_use]
    pub fn apply_instance(&self, instance: &Instance<DenseOrder>) -> Instance<DenseOrder> {
        instance.map_constants(&|c| self.apply(c))
    }
}

/// The binary-representation relation `bin(i)` of Lemma 6.13: row 0 carries the sign,
/// row `j ≥ 1` the j-th bit of `|i|`, returned as `(position, digit)` pairs.
#[must_use]
pub fn bin_relation(i: &BigInt) -> Vec<(BigInt, BigInt)> {
    let mut rows = vec![(
        BigInt::zero(),
        if i.is_negative() {
            BigInt::from(-1i64)
        } else {
            BigInt::one()
        },
    )];
    let mag = i.abs();
    if mag.is_zero() {
        rows.push((BigInt::one(), BigInt::zero()));
        return rows;
    }
    let mut bits = Vec::new();
    let two = BigInt::from(2i64);
    let mut n = mag;
    while !n.is_zero() {
        let (q, r) = n.div_rem(&two);
        bits.push(r);
        n = q;
    }
    for (pos, bit) in bits.iter().rev().enumerate() {
        rows.push((BigInt::from((pos + 1) as i64), bit.clone()));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Term;
    use crate::relation::GenTuple;
    use crate::schema::Schema;
    use crate::theory::Theory;

    fn vx() -> Var {
        Var::new("x")
    }
    fn vy() -> Var {
        Var::new("y")
    }
    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn sample_relation() -> Relation<DenseOrder> {
        Relation::new(
            vec![vx(), vy()],
            vec![
                GenTuple::new(vec![
                    DenseAtom::le(Term::rat("11/4".parse().unwrap()), Term::var("x")),
                    DenseAtom::le(Term::var("x"), Term::cst(7)),
                    DenseAtom::lt(Term::var("y"), Term::var("x")),
                ]),
                GenTuple::new(vec![DenseAtom::le(Term::var("x"), Term::var("y"))]),
            ],
        )
    }

    #[test]
    fn string_encoding_is_nonempty_and_monotone_in_content() {
        let schema = Schema::from_pairs([("R", 2)]);
        let mut small = Instance::new(schema.clone());
        small.set("R", sample_relation()).unwrap();
        let mut large = Instance::new(schema);
        large
            .set(
                "R",
                sample_relation().union(&sample_relation().map_constants(&|c| c + &r(100))),
            )
            .unwrap();
        let s1 = database_size(&small).unwrap();
        let s2 = database_size(&large).unwrap();
        assert!(s1 > 0);
        assert!(
            s2 > s1,
            "a larger representation must have a larger encoding"
        );
        let text = encode_instance(&small).unwrap();
        assert!(text.contains('R') && text.ends_with("**"));
    }

    #[test]
    fn undeclared_variables_are_an_encoding_error() {
        // A tuple mentioning a variable outside the declared columns used to be
        // silently encoded as column 0, corrupting `database_size`.  PR 2 made
        // it an `EncodeError`; the construction-time validation of
        // `Relation::try_new` now rejects such a relation before it can reach
        // the encoder at all (the encoder's `UndeclaredVariable` variant stays
        // as defense in depth).
        let rogue = Relation::<DenseOrder>::try_new(
            vec![vx()],
            vec![GenTuple::new(vec![DenseAtom::lt(
                Term::var("x"),
                Term::var("zz"),
            )])],
        );
        assert!(matches!(
            rogue,
            Err(crate::schema::SchemaError::TupleVariableOutsideColumns { .. })
        ));
        // Well-formed relations still encode.
        assert!(encode_relation("R", &sample_relation()).is_ok());
    }

    #[test]
    fn oversized_symbol_codes_are_a_decode_error() {
        // A symbol code with a numerator outside `i64` used to collapse to the
        // sentinel `-1` and be reported as a plain unknown code; it must be a
        // distinct, loud error (and never collide with genuine codes).
        let vars = vec![Var::new("x1"), Var::new("x2")];
        let conj = vec![DenseAtom::lt(Term::var("x1"), Term::var("x2"))];
        let pt = PrimeTuple::from_primitive(&vars, &conj).unwrap();
        let mut encoded = encode_prime_tuple(&pt);
        // k = 2: the matrix entry (0, 1) sits at pair index 2k + 0·k + 1 = 5,
        // i.e. flat offsets 10 (flag) and 11 (value).
        let huge = BigInt::from(i64::MAX).pow(2);
        assert!(huge.to_i64().is_none());
        encoded[11] = Rat::from(huge);
        let err = decode_prime_tuple(&vars, &encoded).unwrap_err();
        match err {
            DecodeError::BadSymbol(msg) => assert!(msg.contains("overflows"), "{msg}"),
            other => panic!("expected BadSymbol, got {other:?}"),
        }
        // Fractional codes are rejected too.
        encoded[11] = Rat::from_pair(1, 2);
        assert!(matches!(
            decode_prime_tuple(&vars, &encoded),
            Err(DecodeError::BadSymbol(_))
        ));
    }

    #[test]
    fn prime_tuple_encoding_roundtrip() {
        let vars = vec![Var::new("x1"), Var::new("x2"), Var::new("x3")];
        let conj = vec![
            DenseAtom::lt(Term::cst(0), Term::var("x1")),
            DenseAtom::lt(Term::var("x1"), Term::cst(5)),
            DenseAtom::lt(Term::cst(0), Term::var("x2")),
            DenseAtom::lt(Term::var("x2"), Term::var("x1")),
            DenseAtom::lt(Term::var("x3"), Term::cst(3)),
        ];
        let pt = PrimeTuple::from_primitive(&vars, &conj).unwrap();
        let encoded = encode_prime_tuple(&pt);
        // 2·(2k + k²) with k = 3.
        assert_eq!(encoded.len(), 2 * (6 + 9));
        let decoded = decode_prime_tuple(&vars, &encoded).unwrap();
        assert!(DenseOrder::implies(&decoded, &conj));
        assert!(DenseOrder::implies(&conj, &decoded));
        // Malformed input is rejected.
        assert!(decode_prime_tuple(&vars, &encoded[1..]).is_err());
    }

    #[test]
    fn relation_cover_roundtrip() {
        let rel = sample_relation();
        let rows = encode_relation_cover(&rel);
        assert!(!rows.is_empty());
        let back = decode_relation_cover(&[vx(), vy()], &rows).unwrap();
        assert!(back.equivalent(&rel));
    }

    #[test]
    fn adom_map_is_order_preserving_and_invertible() {
        let constants = [r(-7), r(-2), r(0), "1/3".parse().unwrap(), r(5), r(12)];
        let map = AdomMap::for_constants(constants.iter().cloned());
        assert!(map.is_order_preserving());
        assert_eq!(map.len(), 6);
        assert_eq!(map.apply(&r(0)), r(0));
        assert_eq!(map.apply(&"1/3".parse().unwrap()), r(1));
        assert_eq!(map.apply(&r(5)), r(2));
        assert_eq!(map.apply(&r(12)), r(3));
        assert_eq!(map.apply(&r(-2)), r(-1));
        assert_eq!(map.apply(&r(-7)), r(-2));
        for c in &constants {
            let img = map.apply(c);
            assert_eq!(map.invert(&img.numer().clone()), Some(c.clone()));
        }
    }

    #[test]
    fn adom_map_preserves_query_answers_up_to_renaming() {
        // Mapping the instance through ρ and back is the identity on the active domain
        // — the mechanism that lets Theorem 6.6 work on integer encodings.
        let schema = Schema::from_pairs([("R", 2)]);
        let mut inst = Instance::new(schema);
        inst.set("R", sample_relation()).unwrap();
        let map = AdomMap::for_instance(&inst);
        let image = map.apply_instance(&inst);
        let back =
            image.map_constants(&|c| map.invert(&c.numer().clone()).unwrap_or_else(|| c.clone()));
        assert!(back.equivalent(&inst));
    }

    #[test]
    fn bin_relation_encodes_sign_and_bits() {
        let rows = bin_relation(&BigInt::from(6i64));
        // sign row + bits of 110.
        assert_eq!(rows[0], (BigInt::zero(), BigInt::one()));
        let bits: Vec<i64> = rows[1..].iter().map(|(_, b)| b.to_i64().unwrap()).collect();
        assert_eq!(bits, vec![1, 1, 0]);
        let neg = bin_relation(&BigInt::from(-1i64));
        assert_eq!(neg[0].1, BigInt::from(-1i64));
        let zero = bin_relation(&BigInt::zero());
        assert_eq!(zero.len(), 2);
    }
}
