//! Univariate polynomials with exact rational coefficients.

use frdb_num::{Rat, Sign};
use std::fmt;

/// A univariate polynomial `Σ cᵢ·xⁱ` with rational coefficients, stored in ascending
/// degree order with no trailing zero coefficients.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Poly {
    coeffs: Vec<Rat>,
}

impl Poly {
    /// Builds a polynomial from coefficients in ascending degree order.
    #[must_use]
    pub fn new(mut coeffs: Vec<Rat>) -> Self {
        while coeffs.last().map(Rat::is_zero) == Some(true) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// Builds a polynomial from integer coefficients in ascending degree order.
    #[must_use]
    pub fn from_i64(coeffs: &[i64]) -> Self {
        Poly::new(coeffs.iter().map(|&c| Rat::from_i64(c)).collect())
    }

    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    #[must_use]
    pub fn constant(c: Rat) -> Self {
        Poly::new(vec![c])
    }

    /// The monomial `x`.
    #[must_use]
    pub fn x() -> Self {
        Poly::from_i64(&[0, 1])
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The degree, or `None` for the zero polynomial.
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// The coefficients in ascending degree order.
    #[must_use]
    pub fn coeffs(&self) -> &[Rat] {
        &self.coeffs
    }

    /// The leading coefficient (`None` for the zero polynomial).
    #[must_use]
    pub fn leading(&self) -> Option<&Rat> {
        self.coeffs.last()
    }

    /// Evaluates the polynomial at a rational point (Horner's scheme).
    #[must_use]
    pub fn eval(&self, x: &Rat) -> Rat {
        let mut acc = Rat::zero();
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * x) + c;
        }
        acc
    }

    /// The sign of the polynomial at a rational point.
    #[must_use]
    pub fn sign_at(&self, x: &Rat) -> Sign {
        self.eval(x).sign()
    }

    /// The formal derivative.
    #[must_use]
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, c)| c * &Rat::from_i64(i as i64))
                .collect(),
        )
    }

    /// Polynomial addition.
    #[must_use]
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).cloned().unwrap_or_else(Rat::zero);
            let b = other.coeffs.get(i).cloned().unwrap_or_else(Rat::zero);
            out.push(&a + &b);
        }
        Poly::new(out)
    }

    /// Polynomial subtraction.
    #[must_use]
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.neg())
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Poly {
        Poly {
            coeffs: self.coeffs.iter().map(|c| -c).collect(),
        }
    }

    /// Multiplication by a rational scalar.
    #[must_use]
    pub fn scale(&self, k: &Rat) -> Poly {
        if k.is_zero() {
            return Poly::zero();
        }
        Poly {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
        }
    }

    /// Polynomial multiplication.
    #[must_use]
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Rat::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            for (j, b) in other.coeffs.iter().enumerate() {
                out[i + j] = &out[i + j] + &(a * b);
            }
        }
        Poly::new(out)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = quotient·divisor + remainder` and `deg(remainder) < deg(divisor)`.
    ///
    /// # Panics
    /// Panics if the divisor is the zero polynomial.
    #[must_use]
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let mut rem = self.clone();
        let mut quot =
            vec![Rat::zero(); self.coeffs.len().saturating_sub(divisor.coeffs.len() - 1)];
        let dlead = divisor.leading().expect("non-zero divisor").clone();
        let ddeg = divisor.degree().expect("non-zero divisor");
        while !rem.is_zero() && rem.degree().unwrap_or(0) >= ddeg && rem.degree().is_some() {
            let rdeg = rem.degree().unwrap();
            if rdeg < ddeg {
                break;
            }
            let factor = rem.leading().unwrap() / &dlead;
            let shift = rdeg - ddeg;
            if shift < quot.len() {
                quot[shift] = &quot[shift] + &factor;
            } else {
                quot.resize(shift + 1, Rat::zero());
                quot[shift] = factor.clone();
            }
            // rem -= factor · x^shift · divisor
            let mut sub = vec![Rat::zero(); shift];
            sub.extend(divisor.coeffs.iter().map(|c| c * &factor));
            rem = rem.sub(&Poly::new(sub));
        }
        (Poly::new(quot), rem)
    }

    /// The remainder of Euclidean division.
    #[must_use]
    pub fn rem(&self, divisor: &Poly) -> Poly {
        self.div_rem(divisor).1
    }

    /// Monic normalization (leading coefficient 1); the zero polynomial is unchanged.
    #[must_use]
    pub fn monic(&self) -> Poly {
        match self.leading() {
            None => Poly::zero(),
            Some(l) => self.scale(&l.recip()),
        }
    }

    /// Greatest common divisor (monic), by the Euclidean algorithm.
    #[must_use]
    pub fn gcd(&self, other: &Poly) -> Poly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r.monic();
        }
        a.monic()
    }

    /// The square-free part `self / gcd(self, self')`, which has the same real roots
    /// without multiplicities — the polynomial Sturm's theorem is applied to.
    #[must_use]
    pub fn square_free(&self) -> Poly {
        if self.degree().unwrap_or(0) <= 1 {
            return self.clone();
        }
        let g = self.gcd(&self.derivative());
        if g.degree() == Some(0) {
            self.clone()
        } else {
            self.div_rem(&g).0
        }
    }

    /// The Cauchy root bound: every real root lies in `(-B, B)` with
    /// `B = 1 + max |cᵢ / c_lead|`.
    ///
    /// # Panics
    /// Panics on the zero polynomial.
    #[must_use]
    pub fn root_bound(&self) -> Rat {
        let lead = self
            .leading()
            .expect("root bound of the zero polynomial")
            .abs();
        let max = self
            .coeffs
            .iter()
            .take(self.coeffs.len() - 1)
            .map(|c| &c.abs() / &lead)
            .fold(Rat::zero(), Rat::max);
        &Rat::one() + &max
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            match i {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}·x")?,
                _ => write!(f, "{c}·x^{i}")?,
            }
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn arithmetic_and_eval() {
        // (x - 1)(x + 2) = x² + x - 2
        let p = Poly::from_i64(&[-1, 1]).mul(&Poly::from_i64(&[2, 1]));
        assert_eq!(p, Poly::from_i64(&[-2, 1, 1]));
        assert_eq!(p.eval(&r(1)), r(0));
        assert_eq!(p.eval(&r(-2)), r(0));
        assert_eq!(p.eval(&r(2)), r(4));
        assert_eq!(p.degree(), Some(2));
        assert_eq!(p.derivative(), Poly::from_i64(&[1, 2]));
        assert_eq!(p.add(&p.neg()), Poly::zero());
    }

    #[test]
    fn division_invariant() {
        let p = Poly::from_i64(&[1, 0, 0, 1]); // x³ + 1
        let d = Poly::from_i64(&[1, 1]); // x + 1
        let (q, rem) = p.div_rem(&d);
        assert_eq!(q.mul(&d).add(&rem), p);
        assert!(rem.is_zero());
        let (q2, r2) = Poly::from_i64(&[1, 0, 1]).div_rem(&d); // x² + 1 = (x+1)(x-1) + 2
        assert_eq!(q2.mul(&d).add(&r2), Poly::from_i64(&[1, 0, 1]));
        assert_eq!(r2, Poly::constant(r(2)));
    }

    #[test]
    fn gcd_and_square_free() {
        // gcd((x-1)²(x+2), (x-1)(x+3)) = x - 1 (monic).
        let a = Poly::from_i64(&[-1, 1])
            .mul(&Poly::from_i64(&[-1, 1]))
            .mul(&Poly::from_i64(&[2, 1]));
        let b = Poly::from_i64(&[-1, 1]).mul(&Poly::from_i64(&[3, 1]));
        assert_eq!(a.gcd(&b), Poly::from_i64(&[-1, 1]));
        // Square-free part of (x-1)²(x+2) is (x-1)(x+2).
        let sf = a.square_free();
        assert_eq!(
            sf.monic(),
            Poly::from_i64(&[-1, 1])
                .mul(&Poly::from_i64(&[2, 1]))
                .monic()
        );
    }

    #[test]
    fn root_bound_contains_roots() {
        let p = Poly::from_i64(&[-6, 11, -6, 1]); // (x-1)(x-2)(x-3)
        let b = p.root_bound();
        assert!(b > r(3));
        assert!(p.eval(&b) != r(0));
    }
}
