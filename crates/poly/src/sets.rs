//! Semialgebraic subsets of the real line: Proposition 2.9 made executable.
//!
//! A monadic `L×`-representable relation over `R` is given by a quantifier-free
//! formula in one variable; a conjunction of polynomial sign conditions is the
//! building block.  [`decompose`] turns such a conjunction into the finite union of
//! points and intervals that Proposition 2.9 guarantees, with exact algebraic
//! endpoints.

use crate::poly::Poly;
use crate::roots::{isolate_roots, AlgebraicNumber};
use frdb_num::{Rat, Sign};
use std::cmp::Ordering;

/// The sign condition of a polynomial constraint `p(x) ⋈ 0`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SignOp {
    /// `p(x) < 0`.
    Lt,
    /// `p(x) ≤ 0`.
    Le,
    /// `p(x) = 0`.
    Eq,
    /// `p(x) ≠ 0`.
    Ne,
    /// `p(x) ≥ 0`.
    Ge,
    /// `p(x) > 0`.
    Gt,
}

impl SignOp {
    /// Whether a value of the given sign satisfies the condition.
    #[must_use]
    pub fn admits(self, sign: Sign) -> bool {
        match self {
            SignOp::Lt => sign == Sign::Negative,
            SignOp::Le => sign != Sign::Positive,
            SignOp::Eq => sign == Sign::Zero,
            SignOp::Ne => sign != Sign::Zero,
            SignOp::Ge => sign != Sign::Negative,
            SignOp::Gt => sign == Sign::Positive,
        }
    }
}

/// A univariate polynomial constraint `poly(x) ⋈ 0`.
#[derive(Clone, Debug)]
pub struct PolyConstraint {
    /// The polynomial.
    pub poly: Poly,
    /// The sign condition.
    pub op: SignOp,
}

impl PolyConstraint {
    /// Creates a constraint.
    #[must_use]
    pub fn new(poly: Poly, op: SignOp) -> Self {
        PolyConstraint { poly, op }
    }

    /// Whether a rational point satisfies the constraint.
    #[must_use]
    pub fn holds_at(&self, x: &Rat) -> bool {
        self.op.admits(self.poly.sign_at(x))
    }
}

/// An endpoint of a piece of the decomposition: an exact real algebraic number.
pub type RealEndpoint = AlgebraicNumber;

/// A maximal piece of a semialgebraic subset of the line.
#[derive(Clone, Debug)]
pub enum RealPiece {
    /// An isolated point.
    Point(RealEndpoint),
    /// A maximal interval with optional endpoints (`None` = unbounded) and
    /// inclusion flags.
    Interval {
        /// Lower endpoint and whether it belongs to the set.
        lo: Option<(RealEndpoint, bool)>,
        /// Upper endpoint and whether it belongs to the set.
        hi: Option<(RealEndpoint, bool)>,
    },
}

impl RealPiece {
    /// Whether the piece is a single point.
    #[must_use]
    pub fn is_point(&self) -> bool {
        matches!(self, RealPiece::Point(_))
    }
}

/// Whether a rational point satisfies a conjunction of polynomial constraints
/// (Proposition 2.4 for the real-field context: membership is decided by evaluating
/// the representation).
#[must_use]
pub fn membership(constraints: &[PolyConstraint], x: &Rat) -> bool {
    constraints.iter().all(|c| c.holds_at(x))
}

/// The sign of a polynomial at an algebraic number.
fn sign_at_algebraic(p: &Poly, x: &AlgebraicNumber) -> Sign {
    match x {
        AlgebraicNumber::Rational(r) => p.sign_at(r),
        AlgebraicNumber::Isolated(iv) => {
            // If p shares the root, the sign is zero (soundness argued via the gcd as
            // in `AlgebraicNumber::compare`).
            let g = p.gcd(&iv.poly);
            if g.degree().unwrap_or(0) >= 1 {
                let seq = crate::roots::sturm_sequence(&g);
                if crate::roots::count_roots_in(&seq, &iv.lo, &iv.hi) >= 1 {
                    return Sign::Zero;
                }
            }
            // Otherwise refine the isolating interval until p has no root inside it,
            // then the sign is constant on the interval and can be sampled.
            let mut x = x.clone();
            let seq_p = crate::roots::sturm_sequence(p);
            loop {
                if let AlgebraicNumber::Rational(r) = &x {
                    return p.sign_at(r);
                }
                let (lo, hi) = (x.lower(), x.upper());
                if crate::roots::count_roots_in(&seq_p, &lo, &hi) == 0 {
                    return p.sign_at(&lo.midpoint(&hi));
                }
                x.refine();
            }
        }
    }
}

/// Decomposes the solution set of a conjunction of univariate polynomial constraints
/// into its maximal pieces, in increasing order.
///
/// This is the executable content of Proposition 2.9: the number of pieces is finite
/// (bounded by one plus the total number of distinct roots of the polynomials
/// involved), so every `L×`-representable monadic relation is a finite union of
/// intervals — the o-minimality of the real field, restricted to the fragment the
/// engine implements exactly.
#[must_use]
pub fn decompose(constraints: &[PolyConstraint]) -> Vec<RealPiece> {
    // Degenerate cases: constant polynomials contribute globally true/false.
    let mut globally_false = false;
    let mut roots: Vec<AlgebraicNumber> = Vec::new();
    for c in constraints {
        if c.poly.degree().unwrap_or(0) == 0 {
            let sign = c.poly.coeffs().first().map_or(Sign::Zero, Rat::sign);
            if !c.op.admits(sign) {
                globally_false = true;
            }
            continue;
        }
        roots.extend(isolate_roots(&c.poly));
    }
    if globally_false {
        return Vec::new();
    }
    roots.sort_by(AlgebraicNumber::compare);
    roots.dedup_by(|a, b| a.compare(b) == Ordering::Equal);

    // Membership of each elementary region: the points (the roots themselves) and the
    // open regions between consecutive roots (sampled at rational points).
    let holds_at_root = |x: &AlgebraicNumber| {
        constraints
            .iter()
            .all(|c| c.op.admits(sign_at_algebraic(&c.poly, x)))
    };
    let sample_between = |left: Option<&AlgebraicNumber>, right: Option<&AlgebraicNumber>| -> Rat {
        match (left, right) {
            (None, None) => Rat::zero(),
            (None, Some(r)) => &r.lower() - &Rat::one(),
            (Some(l), None) => &l.upper() + &Rat::one(),
            (Some(l), Some(r)) => {
                // Refine both until their bounding intervals separate, then take a
                // rational strictly between them.
                let mut a = l.clone();
                let mut b = r.clone();
                loop {
                    if a.upper() < b.lower() {
                        return a.upper().midpoint(&b.lower());
                    }
                    a.refine();
                    b.refine();
                }
            }
        }
    };

    // Region list: open(-∞,α₁), {α₁}, open(α₁,α₂), …, {αₘ}, open(αₘ,+∞).
    let mut region_member: Vec<bool> = Vec::new();
    let mut region_is_point: Vec<Option<usize>> = Vec::new();
    let m = roots.len();
    for i in 0..=m {
        let left = if i == 0 { None } else { Some(&roots[i - 1]) };
        let right = if i == m { None } else { Some(&roots[i]) };
        let sample = sample_between(left, right);
        region_member.push(membership(constraints, &sample));
        region_is_point.push(None);
        if i < m {
            region_member.push(holds_at_root(&roots[i]));
            region_is_point.push(Some(i));
        }
    }

    // Merge consecutive member regions into maximal pieces.
    let mut pieces = Vec::new();
    let mut idx = 0;
    while idx < region_member.len() {
        if !region_member[idx] {
            idx += 1;
            continue;
        }
        let start = idx;
        let mut end = idx;
        while end + 1 < region_member.len() && region_member[end + 1] {
            end += 1;
        }
        if start == end {
            if let Some(k) = region_is_point[start] {
                pieces.push(RealPiece::Point(roots[k].clone()));
                idx = end + 1;
                continue;
            }
        }
        // The piece spans regions start..=end; figure out its endpoints.
        let lo = match region_is_point[start] {
            Some(k) => Some((roots[k].clone(), true)),
            None => {
                // An open region: its left endpoint is the root before it (excluded),
                // or −∞ if it is the leftmost region.
                let open_index = start / 2; // open regions sit at even indices
                if open_index == 0 {
                    None
                } else {
                    Some((roots[open_index - 1].clone(), false))
                }
            }
        };
        let hi = match region_is_point[end] {
            Some(k) => Some((roots[k].clone(), true)),
            None => {
                let open_index = end / 2;
                if open_index == m {
                    None
                } else {
                    Some((roots[open_index].clone(), false))
                }
            }
        };
        pieces.push(RealPiece::Interval { lo, hi });
        idx = end + 1;
    }
    pieces
}

/// The number of maximal pieces of the solution set — the quantity Proposition 2.9
/// asserts to be finite.
#[must_use]
pub fn piece_count(constraints: &[PolyConstraint]) -> usize {
    decompose(constraints).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn half_circle_projection_shape() {
        // x² ≤ 1: the closed interval [−1, 1].
        let c = PolyConstraint::new(Poly::from_i64(&[-1, 0, 1]), SignOp::Le);
        let pieces = decompose(std::slice::from_ref(&c));
        assert_eq!(pieces.len(), 1);
        match &pieces[0] {
            RealPiece::Interval {
                lo: Some((lo, true)),
                hi: Some((hi, true)),
            } => {
                assert_eq!(lo.cmp_rat(&r(-1)), Ordering::Equal);
                assert_eq!(hi.cmp_rat(&r(1)), Ordering::Equal);
            }
            other => panic!("unexpected piece {other:?}"),
        }
        assert!(membership(std::slice::from_ref(&c), &r(0)));
        assert!(!membership(&[c], &r(2)));
    }

    #[test]
    fn strict_and_equality_conditions() {
        // x² − 2 = 0: two isolated (irrational) points.
        let eq = PolyConstraint::new(Poly::from_i64(&[-2, 0, 1]), SignOp::Eq);
        let pieces = decompose(&[eq]);
        assert_eq!(pieces.len(), 2);
        assert!(pieces.iter().all(RealPiece::is_point));
        // x² − 2 ≠ 0: three open intervals.
        let ne = PolyConstraint::new(Poly::from_i64(&[-2, 0, 1]), SignOp::Ne);
        let pieces = decompose(&[ne]);
        assert_eq!(pieces.len(), 3);
        assert!(pieces.iter().all(|p| !p.is_point()));
    }

    #[test]
    fn conjunction_intersects_pieces() {
        // x² ≥ 1 ∧ x ≥ 0 ∧ (x − 3) < 0: the interval [1, 3).
        let cs = vec![
            PolyConstraint::new(Poly::from_i64(&[-1, 0, 1]), SignOp::Ge),
            PolyConstraint::new(Poly::from_i64(&[0, 1]), SignOp::Ge),
            PolyConstraint::new(Poly::from_i64(&[-3, 1]), SignOp::Lt),
        ];
        let pieces = decompose(&cs);
        assert_eq!(pieces.len(), 1);
        match &pieces[0] {
            RealPiece::Interval {
                lo: Some((lo, true)),
                hi: Some((hi, false)),
            } => {
                assert_eq!(lo.cmp_rat(&r(1)), Ordering::Equal);
                assert_eq!(hi.cmp_rat(&r(3)), Ordering::Equal);
            }
            other => panic!("unexpected piece {other:?}"),
        }
        assert!(membership(&cs, &r(2)));
        assert!(membership(&cs, &r(1)));
        assert!(!membership(&cs, &r(3)));
        assert!(!membership(&cs, &r(0)));
    }

    #[test]
    fn empty_and_full_sets() {
        // x² + 1 ≤ 0 is empty; x² + 1 > 0 is all of R.
        let empty = decompose(&[PolyConstraint::new(Poly::from_i64(&[1, 0, 1]), SignOp::Le)]);
        assert!(empty.is_empty());
        let full = decompose(&[PolyConstraint::new(Poly::from_i64(&[1, 0, 1]), SignOp::Gt)]);
        assert_eq!(full.len(), 1);
        match &full[0] {
            RealPiece::Interval { lo: None, hi: None } => {}
            other => panic!("unexpected piece {other:?}"),
        }
        // A false constant constraint empties everything.
        let falsum = decompose(&[PolyConstraint::new(Poly::constant(r(1)), SignOp::Lt)]);
        assert!(falsum.is_empty());
        // No constraints at all: the whole line.
        assert_eq!(decompose(&[]).len(), 1);
    }

    #[test]
    fn piece_count_is_bounded_by_degrees() {
        // Proposition 2.9 / o-minimality: the number of pieces of a single constraint
        // of degree d is at most d + 1.
        for (coeffs, op) in [
            (vec![-6i64, 11, -6, 1], SignOp::Gt),
            (vec![-6, 11, -6, 1], SignOp::Le),
            (vec![0, 0, 0, 0, 1], SignOp::Ge),
            (vec![-1, 0, 0, 0, 0, 1], SignOp::Ne),
        ] {
            let p = Poly::from_i64(&coeffs);
            let d = p.degree().unwrap();
            let n = piece_count(&[PolyConstraint::new(p, op)]);
            assert!(n <= d + 1, "{n} pieces for degree {d}");
            assert!(n >= 1);
        }
    }

    #[test]
    fn shared_roots_between_constraints() {
        // (x−1)(x−2) ≤ 0 ∧ (x−1)(x−3) ≥ 0: {1} ∪ ∅ ... compute and check by sampling.
        let cs = vec![
            PolyConstraint::new(Poly::from_i64(&[2, -3, 1]), SignOp::Le),
            PolyConstraint::new(Poly::from_i64(&[3, -4, 1]), SignOp::Ge),
        ];
        let pieces = decompose(&cs);
        // [1,2] ∩ ((−∞,1] ∪ [3,∞)) = {1}.
        assert_eq!(pieces.len(), 1);
        assert!(pieces[0].is_point());
        assert!(membership(&cs, &r(1)));
        assert!(!membership(&cs, &"3/2".parse().unwrap()));
    }
}
