//! Sturm sequences, exact root counting and root isolation.

use crate::poly::Poly;
use frdb_num::{Rat, Sign};
use std::cmp::Ordering;

/// The Sturm sequence of the square-free part of a polynomial.
///
/// `seq[0]` is the square-free part, `seq[1]` its derivative, and
/// `seq[i+1] = −rem(seq[i−1], seq[i])`.
#[must_use]
pub fn sturm_sequence(p: &Poly) -> Vec<Poly> {
    let sf = p.square_free();
    if sf.is_zero() || sf.degree() == Some(0) {
        return vec![sf];
    }
    let mut seq = vec![sf.clone(), sf.derivative()];
    loop {
        let n = seq.len();
        let rem = seq[n - 2].rem(&seq[n - 1]);
        if rem.is_zero() {
            break;
        }
        seq.push(rem.neg());
    }
    seq
}

fn sign_variations(signs: impl Iterator<Item = Sign>) -> usize {
    let mut count = 0;
    let mut last: Option<Sign> = None;
    for s in signs {
        if s == Sign::Zero {
            continue;
        }
        if let Some(prev) = last {
            if prev != s {
                count += 1;
            }
        }
        last = Some(s);
    }
    count
}

/// Sign variations of the Sturm sequence at a rational point.
#[must_use]
pub fn variations_at(seq: &[Poly], x: &Rat) -> usize {
    sign_variations(seq.iter().map(|p| p.sign_at(x)))
}

/// The number of *distinct* real roots of `p` in the half-open interval `(a, b]`
/// (provided neither `a` nor `b` is a root; the isolation routine maintains that
/// invariant).
#[must_use]
pub fn count_roots_in(seq: &[Poly], a: &Rat, b: &Rat) -> usize {
    variations_at(seq, a).saturating_sub(variations_at(seq, b))
}

/// An isolating interval for a single real root of a polynomial.
#[derive(Clone, Debug)]
pub struct RootInterval {
    /// The (square-free) polynomial whose unique root in `(lo, hi)` is represented.
    pub poly: Poly,
    /// Lower endpoint (not a root).
    pub lo: Rat,
    /// Upper endpoint (not a root).
    pub hi: Rat,
}

/// A real algebraic number: either an explicit rational or a root isolated in an
/// interval.  This is the exact endpoint representation used by the decomposition of
/// Proposition 2.9.
#[derive(Clone, Debug)]
pub enum AlgebraicNumber {
    /// An explicit rational value.
    Rational(Rat),
    /// The unique root of `poly` in `(lo, hi)`.
    Isolated(RootInterval),
}

impl AlgebraicNumber {
    /// A rational lower bound of the number.
    #[must_use]
    pub fn lower(&self) -> Rat {
        match self {
            AlgebraicNumber::Rational(r) => r.clone(),
            AlgebraicNumber::Isolated(iv) => iv.lo.clone(),
        }
    }

    /// A rational upper bound of the number.
    #[must_use]
    pub fn upper(&self) -> Rat {
        match self {
            AlgebraicNumber::Rational(r) => r.clone(),
            AlgebraicNumber::Isolated(iv) => iv.hi.clone(),
        }
    }

    /// A rational approximation (the interval midpoint, or the value itself).
    #[must_use]
    pub fn approx(&self) -> Rat {
        match self {
            AlgebraicNumber::Rational(r) => r.clone(),
            AlgebraicNumber::Isolated(iv) => iv.lo.midpoint(&iv.hi),
        }
    }

    /// Halves the isolating interval (no effect on rationals).
    pub fn refine(&mut self) {
        if let AlgebraicNumber::Isolated(iv) = self {
            let seq = sturm_sequence(&iv.poly);
            let mid = iv.lo.midpoint(&iv.hi);
            if iv.poly.eval(&mid).is_zero() {
                *self = AlgebraicNumber::Rational(mid);
                return;
            }
            if count_roots_in(&seq, &iv.lo, &mid) == 1 {
                iv.hi = mid;
            } else {
                iv.lo = mid;
            }
        }
    }

    /// Compares the algebraic number with a rational, refining as needed.
    #[must_use]
    pub fn cmp_rat(&self, x: &Rat) -> Ordering {
        match self {
            AlgebraicNumber::Rational(r) => r.cmp(x),
            AlgebraicNumber::Isolated(iv) => {
                if iv.poly.eval(x).is_zero() && *x > iv.lo && *x < iv.hi {
                    // x is a root of the defining polynomial inside the isolating
                    // interval, hence x *is* the represented number.
                    return Ordering::Equal;
                }
                let mut me = self.clone();
                loop {
                    if me.upper() < *x {
                        return Ordering::Less;
                    }
                    if me.lower() > *x {
                        return Ordering::Greater;
                    }
                    if let AlgebraicNumber::Rational(r) = &me {
                        return r.cmp(x);
                    }
                    me.refine();
                }
            }
        }
    }

    /// Exact comparison of two algebraic numbers.
    ///
    /// Distinct numbers are separated by refinement; potential equality (overlapping
    /// isolating intervals) is decided through the gcd of the defining polynomials.
    #[must_use]
    pub fn compare(&self, other: &AlgebraicNumber) -> Ordering {
        match (self, other) {
            (AlgebraicNumber::Rational(a), AlgebraicNumber::Rational(b)) => a.cmp(b),
            (AlgebraicNumber::Rational(a), AlgebraicNumber::Isolated(_)) => {
                other.cmp_rat(a).reverse()
            }
            (AlgebraicNumber::Isolated(_), AlgebraicNumber::Rational(b)) => self.cmp_rat(b),
            (AlgebraicNumber::Isolated(a), AlgebraicNumber::Isolated(b)) => {
                // Equality test: a common root inside the intersection of the
                // isolating intervals.
                let g = a.poly.gcd(&b.poly);
                if g.degree().unwrap_or(0) >= 1 {
                    let lo = a.lo.clone().max(b.lo.clone());
                    let hi = a.hi.clone().min(b.hi.clone());
                    if lo < hi {
                        let seq = sturm_sequence(&g);
                        if count_roots_in(&seq, &lo, &hi) >= 1 {
                            return Ordering::Equal;
                        }
                    }
                }
                // Otherwise refine until the intervals separate.
                let mut x = self.clone();
                let mut y = other.clone();
                loop {
                    if x.upper() < y.lower() {
                        return Ordering::Less;
                    }
                    if y.upper() < x.lower() {
                        return Ordering::Greater;
                    }
                    if let (AlgebraicNumber::Rational(a), AlgebraicNumber::Rational(b)) = (&x, &y) {
                        return a.cmp(b);
                    }
                    x.refine();
                    y.refine();
                }
            }
        }
    }
}

/// Isolates all distinct real roots of a polynomial, returned in increasing order.
///
/// Rational roots discovered during bisection are reported exactly; the remaining
/// roots are returned as isolating intervals of the (deflated) square-free part.
#[must_use]
pub fn isolate_roots(p: &Poly) -> Vec<AlgebraicNumber> {
    if p.is_zero() || p.degree() == Some(0) {
        return Vec::new();
    }
    let mut sf = p.square_free().monic();
    let mut rational_roots: Vec<Rat> = Vec::new();

    'restart: loop {
        if sf.degree().unwrap_or(0) == 0 {
            break;
        }
        let seq = sturm_sequence(&sf);
        let mut bound = sf.root_bound();
        // Make sure the bounds themselves are not roots (the Cauchy bound already
        // guarantees it, but be defensive).
        while sf.eval(&bound).is_zero() || sf.eval(&-bound.clone()).is_zero() {
            bound = &bound + &Rat::one();
        }
        let mut stack = vec![(-bound.clone(), bound.clone())];
        let mut intervals: Vec<(Rat, Rat)> = Vec::new();
        while let Some((a, b)) = stack.pop() {
            let n = count_roots_in(&seq, &a, &b);
            if n == 0 {
                continue;
            }
            if n == 1 {
                intervals.push((a, b));
                continue;
            }
            let m = a.midpoint(&b);
            if sf.eval(&m).is_zero() {
                // Deflate and start over with the reduced polynomial.
                rational_roots.push(m.clone());
                let factor = Poly::new(vec![-m, Rat::one()]);
                sf = sf.div_rem(&factor).0;
                continue 'restart;
            }
            stack.push((a, m.clone()));
            stack.push((m, b));
        }
        let mut out: Vec<AlgebraicNumber> = rational_roots
            .iter()
            .cloned()
            .map(AlgebraicNumber::Rational)
            .collect();
        out.extend(intervals.into_iter().map(|(lo, hi)| {
            AlgebraicNumber::Isolated(RootInterval {
                poly: sf.clone(),
                lo,
                hi,
            })
        }));
        out.sort_by(|a, b| a.compare(b));
        return out;
    }
    let mut out: Vec<AlgebraicNumber> = rational_roots
        .into_iter()
        .map(AlgebraicNumber::Rational)
        .collect();
    out.sort_by(|a, b| a.compare(b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn sturm_counts_roots_of_cubic() {
        // (x-1)(x-2)(x-3): three roots in (0, 4].
        let p = Poly::from_i64(&[-6, 11, -6, 1]);
        let seq = sturm_sequence(&p);
        assert_eq!(count_roots_in(&seq, &r(0), &r(4)), 3);
        assert_eq!(count_roots_in(&seq, &"3/2".parse().unwrap(), &r(4)), 2);
        assert_eq!(count_roots_in(&seq, &r(4), &r(10)), 0);
    }

    #[test]
    fn multiple_roots_are_counted_once() {
        // (x-1)²(x+2): two distinct roots.
        let p = Poly::from_i64(&[-1, 1])
            .mul(&Poly::from_i64(&[-1, 1]))
            .mul(&Poly::from_i64(&[2, 1]));
        let seq = sturm_sequence(&p);
        assert_eq!(count_roots_in(&seq, &r(-10), &r(10)), 2);
        let roots = isolate_roots(&p);
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn isolate_roots_of_x2_minus_2() {
        // x² − 2: roots ±√2, both irrational.
        let p = Poly::from_i64(&[-2, 0, 1]);
        let roots = isolate_roots(&p);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].cmp_rat(&r(-2)), Ordering::Greater);
        assert_eq!(roots[0].cmp_rat(&r(-1)), Ordering::Less);
        assert_eq!(roots[1].cmp_rat(&r(1)), Ordering::Greater);
        assert_eq!(roots[1].cmp_rat(&r(2)), Ordering::Less);
        // The two roots are distinct and ordered.
        assert_eq!(roots[0].compare(&roots[1]), Ordering::Less);
        // Comparing √2 (isolated twice) detects equality through the gcd.
        let again = isolate_roots(&p);
        assert_eq!(roots[1].compare(&again[1]), Ordering::Equal);
    }

    #[test]
    fn rational_roots_found_exactly_when_hit() {
        // (x - 1)(x² - 2): bisection hits small rational midpoints.
        let p = Poly::from_i64(&[-1, 1]).mul(&Poly::from_i64(&[-2, 0, 1]));
        let roots = isolate_roots(&p);
        assert_eq!(roots.len(), 3);
        // Exactly one of them equals 1.
        let ones = roots
            .iter()
            .filter(|r0| r0.cmp_rat(&r(1)) == Ordering::Equal)
            .count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn refinement_converges() {
        let p = Poly::from_i64(&[-2, 0, 1]);
        let mut root = isolate_roots(&p).pop().unwrap();
        for _ in 0..20 {
            root.refine();
        }
        let width = &root.upper() - &root.lower();
        assert!(width < "1/1000".parse().unwrap());
        let approx = root.approx();
        // approx² is close to 2.
        let err = (&(&approx * &approx) - &r(2)).abs();
        assert!(err < "1/100".parse().unwrap());
    }

    #[test]
    fn no_roots_for_positive_definite() {
        let p = Poly::from_i64(&[1, 0, 1]); // x² + 1
        assert!(isolate_roots(&p).is_empty());
        assert!(isolate_roots(&Poly::constant(r(5))).is_empty());
        assert!(isolate_roots(&Poly::zero()).is_empty());
    }
}
