//! # frdb-poly
//!
//! Exact univariate polynomial constraints over the reals with rational coefficients —
//! the fragment of the real-field context `R = (R, ≤, +, ×)` that the paper actually
//! exercises:
//!
//! * **Proposition 2.9**: every `L×`-representable monadic relation over `R` is a
//!   finite union of intervals.  [`decompose`] computes that decomposition exactly,
//!   with algebraic endpoints represented by isolating intervals.
//! * **o-minimality** (Section 3): the definable monadic sets are finite unions of
//!   intervals — the hypothesis under which compactness fails and satisfiability is
//!   undecidable.  The decomposition gives an executable witness (a bound on the
//!   number of pieces in terms of the degrees involved).
//! * **Section 7**: the relative cost of polynomial constraints versus order and
//!   linear constraints, measured by the benchmark harness.
//!
//! Multivariate real quantifier elimination (Tarski / cylindrical algebraic
//! decomposition) is out of scope; `DESIGN.md` documents the substitution.
//!
//! The machinery is classical: polynomial arithmetic over `Rat`, Sturm sequences for
//! exact root counting, bisection-based root isolation, and sign evaluation on sample
//! points between isolated roots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod poly;
mod roots;
mod sets;

pub use poly::Poly;
pub use roots::{isolate_roots, sturm_sequence, AlgebraicNumber, RootInterval};
pub use sets::{
    decompose, membership, piece_count, PolyConstraint, RealEndpoint, RealPiece, SignOp,
};
