//! Property tests pinning the relational-algebra evaluator against the
//! expand-then-eliminate baseline of Section 4.1: on randomized formulas over
//! both the dense-order and the linear theory, and on the whole `frdb_queries`
//! FO catalog, the evaluators must produce equivalent answer relations.
//!
//! Since the cost-guided optimizer (PR 5), every agreement check runs
//! **three** pipelines — the optimized plan (the default), the unoptimized
//! syntactic-order plan (`OptLevel::None`, the PR 2 baseline), and the expand
//! baseline — and the parallel-executor tests additionally pin that plans
//! evaluated at 2 and 4 worker threads are *bit-identical* (same tuples, same
//! order) to the serial evaluation.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::fo::{
    compile_query, compile_query_with, eval_query, eval_query_expand, eval_sentence,
    eval_sentence_expand, PlanConfig, Statistics,
};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{GenTuple, Instance, Relation};
use frdb_core::schema::Schema;
use frdb_core::theory::Theory;
use frdb_linear::{LinAtom, LinExpr, LinearOrder};
use frdb_num::Rat;
use frdb_queries::catalog::fo_catalog;
use frdb_queries::convexity::{midpoint_convexity_sentence, to_linear_relation};
use frdb_queries::workload::{random_graph, random_intervals, single_relation_instance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts that all evaluation pipelines agree on `{free | formula}` over
/// `instance`: the optimized plan, the statistics-reoptimized plan, the
/// unoptimized syntactic-order plan, and the expand baseline.
fn assert_evaluators_agree<T: Theory>(
    formula: &Formula<T::A>,
    free: &[Var],
    instance: &Instance<T>,
    label: &str,
) where
    T::A: std::fmt::Display,
{
    let algebraic = eval_query(formula, free, instance)
        .unwrap_or_else(|e| panic!("{label}: algebraic evaluator failed: {e}"));
    let expand = eval_query_expand(formula, free, instance)
        .unwrap_or_else(|e| panic!("{label}: expand baseline failed: {e}"));
    assert!(
        algebraic.equivalent(&expand),
        "{label}: evaluators disagree on {formula}\n  algebraic: {algebraic}\n  expand:    {expand}"
    );
    let unoptimized = compile_query_with(formula, free, &PlanConfig::baseline())
        .eval(instance)
        .unwrap_or_else(|e| panic!("{label}: unoptimized plan failed: {e}"));
    assert!(
        unoptimized.equivalent(&expand),
        "{label}: unoptimized plan disagrees on {formula}\n  unoptimized: {unoptimized}\n  expand:      {expand}"
    );
    let tuned = compile_query(formula, free)
        .optimized_for(&Statistics::collect(instance))
        .eval(instance)
        .unwrap_or_else(|e| panic!("{label}: statistics-reoptimized plan failed: {e}"));
    assert!(
        tuned.equivalent(&expand),
        "{label}: statistics-reoptimized plan disagrees on {formula}\n  tuned:  {tuned}\n  expand: {expand}"
    );
}

/// Asserts that evaluating the (optimized) plan at 2 and 4 worker threads is
/// bit-identical to the serial evaluation.
fn assert_parallel_matches_serial<T: Theory>(
    formula: &Formula<T::A>,
    free: &[Var],
    instance: &Instance<T>,
    label: &str,
) where
    T::A: std::fmt::Display,
{
    let serial = compile_query::<T>(formula, free)
        .eval(instance)
        .unwrap_or_else(|e| panic!("{label}: serial evaluation failed: {e}"));
    for threads in [1usize, 2, 4] {
        let parallel = compile_query::<T>(formula, free)
            .with_threads(threads)
            .eval(instance)
            .unwrap_or_else(|e| panic!("{label}: evaluation at {threads} threads failed: {e}"));
        assert_eq!(
            serial.to_dnf(),
            parallel.to_dnf(),
            "{label}: {threads}-thread evaluation diverged from serial on {formula}"
        );
    }
}

// ---------------------------------------------------------------------------
// Randomized dense-order formulas
// ---------------------------------------------------------------------------

fn rand_term(rng: &mut StdRng) -> Term {
    match rng.gen_range(0..=4) {
        0 => Term::var("x"),
        1 => Term::var("y"),
        2 => Term::var("z"),
        _ => Term::cst(rng.gen_range(-2..=4)),
    }
}

fn rand_dense_atom(rng: &mut StdRng) -> DenseAtom {
    let (l, r) = (rand_term(rng), rand_term(rng));
    match rng.gen_range(0..=2) {
        0 => DenseAtom::lt(l, r),
        1 => DenseAtom::le(l, r),
        _ => DenseAtom::eq(l, r),
    }
}

fn rand_dense_leaf(rng: &mut StdRng) -> Formula<DenseAtom> {
    match rng.gen_range(0..=3) {
        0 | 1 => Formula::Atom(rand_dense_atom(rng)),
        2 => Formula::rel("R", [rand_term(rng)]),
        _ => Formula::rel("S", [rand_term(rng), rand_term(rng)]),
    }
}

fn rand_dense_formula(rng: &mut StdRng, depth: usize) -> Formula<DenseAtom> {
    if depth == 0 {
        return rand_dense_leaf(rng);
    }
    fn quant_var(rng: &mut StdRng) -> &'static str {
        match rng.gen_range(0..=2) {
            0 => "x",
            1 => "y",
            _ => "z",
        }
    }
    match rng.gen_range(0..=9) {
        0..=2 => Formula::And(
            (0..rng.gen_range(2..=3))
                .map(|_| rand_dense_formula(rng, depth - 1))
                .collect(),
        ),
        3..=5 => Formula::Or(
            (0..rng.gen_range(2..=3))
                .map(|_| rand_dense_formula(rng, depth - 1))
                .collect(),
        ),
        6 => rand_dense_formula(rng, depth - 1).not(),
        7 => {
            let v = quant_var(rng);
            Formula::exists([v], rand_dense_formula(rng, depth - 1))
        }
        8 => {
            let v = quant_var(rng);
            Formula::forall([v], rand_dense_formula(rng, depth - 1))
        }
        _ => rand_dense_leaf(rng),
    }
}

fn dense_instance(seed: u64) -> Instance<DenseOrder> {
    let mut rng = StdRng::seed_from_u64(seed);
    let r = random_intervals(&mut rng, 2, 12);
    let s = random_graph(&mut rng, 4, 4);
    let mut inst = Instance::new(Schema::from_pairs([("R", 1), ("S", 2)]));
    inst.set("R", r).unwrap();
    inst.set("S", s.rename(vec![Var::new("x"), Var::new("y")]))
        .unwrap();
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algebraic_matches_expand_on_random_dense_formulas(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1..=3);
        let formula = rand_dense_formula(&mut rng, depth);
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        let inst = dense_instance(seed ^ 0xABCD);
        assert_evaluators_agree(&formula, &free, &inst, "random dense formula");
    }
}

// ---------------------------------------------------------------------------
// Randomized linear-constraint formulas (the algebra stays theory-generic)
// ---------------------------------------------------------------------------

fn rand_lin_expr(rng: &mut StdRng) -> LinExpr {
    let mut e = LinExpr::constant(Rat::from_i64(rng.gen_range(-3..=3)));
    for v in ["x", "y"] {
        let c = rng.gen_range(-2..=2);
        if c != 0 {
            e = e.add(&LinExpr::var(v).scale(&Rat::from_i64(c)));
        }
    }
    e
}

fn rand_lin_leaf(rng: &mut StdRng) -> Formula<LinAtom> {
    if rng.gen_range(0..=2) == 0 {
        let t = match rng.gen_range(0..=2) {
            0 => Term::var("x"),
            1 => Term::var("y"),
            _ => Term::cst(rng.gen_range(0..=10)),
        };
        return Formula::rel("R", [t]);
    }
    let (l, r) = (rand_lin_expr(rng), rand_lin_expr(rng));
    Formula::Atom(match rng.gen_range(0..=2) {
        0 => LinAtom::lt(l, r),
        1 => LinAtom::le(l, r),
        _ => LinAtom::eq(l, r),
    })
}

fn rand_lin_formula(rng: &mut StdRng, depth: usize) -> Formula<LinAtom> {
    if depth == 0 {
        return rand_lin_leaf(rng);
    }
    match rng.gen_range(0..=7) {
        0 | 1 => Formula::And((0..2).map(|_| rand_lin_formula(rng, depth - 1)).collect()),
        2 | 3 => Formula::Or((0..2).map(|_| rand_lin_formula(rng, depth - 1)).collect()),
        4 => rand_lin_formula(rng, depth - 1).not(),
        5 => Formula::exists(
            [if rng.gen_range(0..=1) == 0 { "x" } else { "y" }],
            rand_lin_formula(rng, depth - 1),
        ),
        _ => rand_lin_leaf(rng),
    }
}

fn linear_instance(seed: u64) -> Instance<LinearOrder> {
    let mut rng = StdRng::seed_from_u64(seed);
    let r = to_linear_relation(&random_intervals(&mut rng, 2, 10));
    let mut inst = Instance::new(Schema::from_pairs([("R", 1)]));
    inst.set("R", r).unwrap();
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn algebraic_matches_expand_on_random_linear_formulas(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1..=2);
        let formula = rand_lin_formula(&mut rng, depth);
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        let inst = linear_instance(seed ^ 0x5EED);
        assert_evaluators_agree(&formula, &free, &inst, "random linear formula");
    }
}

// ---------------------------------------------------------------------------
// The full FO catalog, on both engines
// ---------------------------------------------------------------------------

#[test]
fn algebraic_matches_expand_on_the_full_catalog() {
    for entry in fo_catalog() {
        for (i, inst) in entry.instances.iter().enumerate() {
            assert_evaluators_agree(
                &entry.formula,
                &entry.free,
                inst,
                &format!("catalog entry {} (instance {i})", entry.name),
            );
        }
    }
}

#[test]
fn parallel_executor_matches_serial_on_the_full_catalog() {
    for entry in fo_catalog() {
        for (i, inst) in entry.instances.iter().enumerate() {
            assert_parallel_matches_serial(
                &entry.formula,
                &entry.free,
                inst,
                &format!("catalog entry {} (instance {i})", entry.name),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_executor_matches_serial_on_random_dense_formulas(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1..=3);
        let formula = rand_dense_formula(&mut rng, depth);
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        let inst = dense_instance(seed ^ 0xF00D);
        assert_parallel_matches_serial(&formula, &free, &inst, "random dense formula (parallel)");
    }

    #[test]
    fn parallel_executor_matches_serial_on_random_linear_formulas(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1..=2);
        let formula = rand_lin_formula(&mut rng, depth);
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        let inst = linear_instance(seed ^ 0xBEEF);
        assert_parallel_matches_serial(&formula, &free, &inst, "random linear formula (parallel)");
    }
}

// ---------------------------------------------------------------------------
// Indexed joins vs the pairwise scan, at the Relation level (PR 6)
// ---------------------------------------------------------------------------

/// A random generalized tuple constraining each variable to nothing (the
/// sweep's wildcard class), a pin, a half-open ray, or a possibly-empty
/// closed/open interval — exactly the envelope shapes the interval index
/// classifies.
fn rand_interval_tuple(rng: &mut StdRng, vars: &[Var]) -> GenTuple<DenseAtom> {
    let mut atoms = Vec::new();
    for v in vars {
        let t = || Term::var(v.name());
        match rng.gen_range(0..=5) {
            0 => {}
            1 => atoms.push(DenseAtom::eq(t(), Term::cst(rng.gen_range(-4..=8)))),
            2 => {
                let lo = Term::cst(rng.gen_range(-4..=8));
                atoms.push(if rng.gen_range(0..=1) == 0 {
                    DenseAtom::le(lo, t())
                } else {
                    DenseAtom::lt(lo, t())
                });
            }
            3 => {
                let hi = Term::cst(rng.gen_range(-4..=8));
                atoms.push(if rng.gen_range(0..=1) == 0 {
                    DenseAtom::le(t(), hi)
                } else {
                    DenseAtom::lt(t(), hi)
                });
            }
            _ => {
                // Width 0 with strict endpoints yields unsatisfiable tuples,
                // on purpose: both join paths must prune them identically.
                let lo: i64 = rng.gen_range(-4..=6);
                let hi = lo + rng.gen_range(0..=4i64);
                atoms.push(if rng.gen_range(0..=1) == 0 {
                    DenseAtom::le(Term::cst(lo), t())
                } else {
                    DenseAtom::lt(Term::cst(lo), t())
                });
                atoms.push(if rng.gen_range(0..=1) == 0 {
                    DenseAtom::le(t(), Term::cst(hi))
                } else {
                    DenseAtom::lt(t(), Term::cst(hi))
                });
            }
        }
    }
    GenTuple::new(atoms)
}

fn rand_dense_relation(
    rng: &mut StdRng,
    vars: &[&str],
    min: usize,
    max: usize,
) -> Relation<DenseOrder> {
    let vars: Vec<Var> = vars.iter().map(Var::new).collect();
    let tuples = (0..rng.gen_range(min..=max))
        .map(|_| rand_interval_tuple(rng, &vars))
        .collect();
    Relation::new(vars, tuples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The indexed join (interval sweep + pin hashing) must produce the exact
    /// same DNF — same tuples, same order — as the pairwise candidate scan,
    /// on dense instances mixing pins, rays, intervals, wildcards, empty
    /// tuples, and empty relations.
    #[test]
    fn indexed_join_matches_pairwise_scan_on_dense_intervals(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_dense_relation(&mut rng, &["x", "y"], 0, 6);
        let b = rand_dense_relation(&mut rng, &["y", "z"], 0, 6);
        prop_assert_eq!(
            a.join_with(&b, 1).to_dnf(),
            a.join_scan(&b).to_dnf(),
            "indexed dense join diverged from the pairwise scan\n  a: {}\n  b: {}",
            a,
            b
        );
    }

    /// Same agreement over the linear theory, whose envelopes come from
    /// single-variable affine atoms instead of the dense order closure.
    #[test]
    fn indexed_join_matches_pairwise_scan_on_linear_intervals(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = to_linear_relation(&rand_dense_relation(&mut rng, &["x", "y"], 0, 6));
        let b = to_linear_relation(&rand_dense_relation(&mut rng, &["y", "z"], 0, 6));
        prop_assert_eq!(
            a.join_with(&b, 1).to_dnf(),
            a.join_scan(&b).to_dnf(),
            "indexed linear join diverged from the pairwise scan\n  a: {}\n  b: {}",
            a,
            b
        );
    }
}

/// Parallel indexed joins large enough to clear the cost gate must stay
/// bit-identical to the serial result (and to the pairwise scan) at 1, 2 and
/// 4 worker threads: every candidate path yields right indices in ascending
/// order and the parallel merge restores left order.
#[test]
fn parallel_indexed_join_is_bit_identical_to_serial() {
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let a = rand_dense_relation(&mut rng, &["x", "y"], 96, 128);
        let b = rand_dense_relation(&mut rng, &["y", "z"], 96, 128);
        let reference = a.join_scan(&b).to_dnf();
        for threads in [1usize, 2, 4] {
            assert_eq!(
                a.join_with(&b, threads).to_dnf(),
                reference,
                "dense join at {threads} threads diverged from the scan (seed {seed})"
            );
        }
    }
    // One linear round: smaller, since context saturation is costlier there.
    let mut rng = StdRng::seed_from_u64(0x11EA2);
    let a = to_linear_relation(&rand_dense_relation(&mut rng, &["x", "y"], 64, 64));
    let b = to_linear_relation(&rand_dense_relation(&mut rng, &["y", "z"], 64, 64));
    let reference = a.join_scan(&b).to_dnf();
    for threads in [1usize, 2, 4] {
        assert_eq!(
            a.join_with(&b, threads).to_dnf(),
            reference,
            "linear join at {threads} threads diverged from the scan"
        );
    }
}

#[test]
fn midpoint_convexity_agrees_across_evaluators() {
    // The Lemma 5.4 convexity query evaluated over the linear theory: a convex
    // interval and a two-piece non-convex region.
    for (seed, n) in [(1u64, 1usize), (2, 3)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let region = random_intervals(&mut rng, n, 20);
        let mut inst: Instance<LinearOrder> = Instance::new(Schema::from_pairs([("R", 1)]));
        inst.set("R", to_linear_relation(&region)).unwrap();
        let sentence = midpoint_convexity_sentence("R", 1);
        let a = eval_sentence(&sentence, &inst).unwrap();
        let b = eval_sentence_expand(&sentence, &inst).unwrap();
        assert_eq!(a, b, "convexity verdicts disagree (seed {seed})");
        let direct = frdb_queries::convexity::is_convex_1d(&region);
        assert_eq!(a, direct, "evaluator disagrees with the direct algorithm");
    }
}

#[test]
fn single_relation_instances_round_trip_between_engines() {
    // A smoke check that the catalog helpers stay aligned with the engines'
    // column conventions after renames.
    let mut rng = StdRng::seed_from_u64(9);
    let inst = single_relation_instance("R", random_intervals(&mut rng, 3, 30));
    let q: Formula<DenseAtom> = Formula::exists(["x"], Formula::rel("R", [Term::var("x")]));
    assert_eq!(
        eval_sentence(&q, &inst).unwrap(),
        eval_sentence_expand(&q, &inst).unwrap()
    );
}

// ---------------------------------------------------------------------------
// Factorized intermediates vs eager materialization (PR 8)
// ---------------------------------------------------------------------------

/// Asserts that the factorized evaluator (intermediates kept as lazy unions of
/// parts, simplification deferred to plan boundaries) is *bit-identical* —
/// same canonical DNF, same tuple order — to the eager evaluator that
/// materializes every intermediate, at 1, 2 and 4 worker threads.
fn assert_factorized_matches_eager<T: Theory>(
    formula: &Formula<T::A>,
    free: &[Var],
    instance: &Instance<T>,
    label: &str,
) where
    T::A: std::fmt::Display,
{
    for threads in [1usize, 2, 4] {
        let config = PlanConfig {
            threads,
            ..PlanConfig::default()
        };
        let factorized = compile_query_with(formula, free, &config)
            .eval(instance)
            .unwrap_or_else(|e| panic!("{label}: factorized evaluation failed: {e}"));
        let eager = compile_query_with(formula, free, &config.eager())
            .eval(instance)
            .unwrap_or_else(|e| panic!("{label}: eager evaluation failed: {e}"));
        assert_eq!(
            factorized.to_dnf(),
            eager.to_dnf(),
            "{label}: factorized evaluation at {threads} thread(s) diverged from eager on {formula}"
        );
    }
}

#[test]
fn factorized_matches_eager_on_the_full_catalog() {
    for entry in fo_catalog() {
        for (i, inst) in entry.instances.iter().enumerate() {
            assert_factorized_matches_eager(
                &entry.formula,
                &entry.free,
                inst,
                &format!("catalog entry {} (instance {i})", entry.name),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn factorized_matches_eager_on_random_dense_formulas(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1..=3);
        let formula = rand_dense_formula(&mut rng, depth);
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        let inst = dense_instance(seed ^ 0xFAC7);
        assert_factorized_matches_eager(&formula, &free, &inst, "random dense formula (factorized)");
    }

    #[test]
    fn factorized_matches_eager_on_random_linear_formulas(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1..=2);
        let formula = rand_lin_formula(&mut rng, depth);
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        let inst = linear_instance(seed ^ 0xFACE);
        assert_factorized_matches_eager(&formula, &free, &inst, "random linear formula (factorized)");
    }

    /// The box-sweep strategy (second shared column's envelope index refining
    /// the first column's interval sweep) must stay exact against the pairwise
    /// scan when relations share *two* columns.
    #[test]
    fn box_join_matches_pairwise_scan_on_two_shared_columns(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_dense_relation(&mut rng, &["x", "y"], 0, 6);
        let b = rand_dense_relation(&mut rng, &["x", "y"], 0, 6);
        prop_assert_eq!(
            a.join_with(&b, 1).to_dnf(),
            a.join_scan(&b).to_dnf(),
            "box-sweep dense join diverged from the pairwise scan\n  a: {}\n  b: {}",
            a,
            b
        );
        let la = to_linear_relation(&a);
        let lb = to_linear_relation(&b);
        prop_assert_eq!(
            la.join_with(&lb, 1).to_dnf(),
            la.join_scan(&lb).to_dnf(),
            "box-sweep linear join diverged from the pairwise scan\n  a: {}\n  b: {}",
            la,
            lb
        );
    }
}
