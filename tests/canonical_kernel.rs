//! Property tests for the canonical constraint kernel: DNF simplification
//! preserves relation semantics, and the semi-naive Datalog engine agrees with
//! the naive baseline — fixpoint and iteration count — on the reduction
//! workloads of Figs. 3–6 and on random graph closures.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Term, Var};
use frdb_core::relation::{simplify_dnf, Relation};
use frdb_core::schema::RelName;
use frdb_core::theory::{eval_dnf, Dnf};
use frdb_datalog::transitive_closure_program;
use frdb_num::Rat;
use frdb_queries::programs::region_connectivity_program;
use frdb_queries::reductions::majority_to_connectivity;
use frdb_queries::workload::random_graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn r(v: i64) -> Rat {
    Rat::from_i64(v)
}

/// A strategy for dense-order atoms over `x` and `y` with small integer
/// constants — rich enough to produce duplicates, subsumptions and
/// contradictions once combined into conjunctions.
fn atom_strategy() -> impl Strategy<Value = DenseAtom> {
    let c = || -4i64..=4;
    prop_oneof![
        c().prop_map(|a| DenseAtom::le(Term::cst(a), Term::var("x"))),
        c().prop_map(|a| DenseAtom::le(Term::var("x"), Term::cst(a))),
        c().prop_map(|a| DenseAtom::lt(Term::cst(a), Term::var("y"))),
        c().prop_map(|a| DenseAtom::le(Term::var("y"), Term::cst(a))),
        (0u8..=2).prop_map(|k| match k {
            0 => DenseAtom::lt(Term::var("x"), Term::var("y")),
            1 => DenseAtom::le(Term::var("y"), Term::var("x")),
            _ => DenseAtom::eq(Term::var("x"), Term::var("y")),
        }),
        c().prop_map(|a| DenseAtom::eq(Term::var("x"), Term::cst(a))),
    ]
}

fn dnf_strategy() -> impl Strategy<Value = Dnf<DenseAtom>> {
    proptest::collection::vec(proptest::collection::vec(atom_strategy(), 0..5), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simplify_dnf_preserves_relation_equivalence(dnf in dnf_strategy()) {
        let vars = vec![Var::new("x"), Var::new("y")];
        let simplified = simplify_dnf::<DenseOrder>(dnf.clone());
        // Simplification never grows the representation.
        prop_assert!(simplified.len() <= dnf.len());
        // Semantic equivalence at the relation level.
        let before = Relation::<DenseOrder>::from_dnf(vars.clone(), dnf.clone());
        let after = Relation::<DenseOrder>::from_dnf(vars.clone(), simplified.clone());
        prop_assert!(before.equivalent(&after));
        // Pointwise agreement between the raw DNF and the simplified relation
        // on an integer grid spanning all constants used by the strategy.
        for px in -5..=5i64 {
            for py in -5..=5i64 {
                let assign = |v: &Var| if v.name() == "x" { r(px) } else { r(py) };
                prop_assert_eq!(
                    eval_dnf(&dnf, &assign),
                    after.contains(&[r(px), r(py)]),
                    "disagreement at ({}, {})", px, py
                );
            }
        }
    }

    #[test]
    fn simplify_dnf_is_idempotent(dnf in dnf_strategy()) {
        let once = simplify_dnf::<DenseOrder>(dnf);
        let twice = simplify_dnf::<DenseOrder>(once.clone());
        prop_assert_eq!(once, twice);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn semi_naive_matches_naive_on_random_graph_closures(seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = random_graph(&mut rng, 5, 6);
        let inst = frdb_queries::workload::single_relation_instance("edge", graph);
        let program = transitive_closure_program("edge", "tc");
        let semi = program.run(&inst).unwrap();
        let naive = program.run_naive(&inst).unwrap();
        prop_assert_eq!(semi.iterations, naive.iterations);
        let a = semi.instance.get(&RelName::new("tc")).unwrap();
        let b = naive.instance.get(&RelName::new("tc")).unwrap();
        let b = b.rename(a.vars().to_vec());
        prop_assert!(a.equivalent(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn semi_naive_matches_naive_on_fig3_reduction_workloads(
        bits in proptest::collection::vec(any::<bool>(), 1..4)
    ) {
        // The Fig. 3 majority-to-connectivity regions drive the Example 6.3
        // program, which mixes a formula-bodied sweep rule with recursive
        // literal rules — both evaluation paths of the semi-naive engine.
        let region = majority_to_connectivity(&bits);
        let edb = frdb_queries::workload::single_relation_instance(
            "R",
            region.rename(vec![Var::new("x"), Var::new("y")]),
        );
        let program = region_connectivity_program("R");
        let semi = program.run(&edb).unwrap();
        let naive = program.run_naive(&edb).unwrap();
        prop_assert_eq!(semi.iterations, naive.iterations);
        for name in ["sweep", "conn"] {
            let a = semi.instance.get(&RelName::new(name)).unwrap();
            let b = naive.instance.get(&RelName::new(name)).unwrap();
            let b = b.rename(a.vars().to_vec());
            prop_assert!(a.equivalent(&b), "fixpoints differ on {}", name);
        }
    }
}
