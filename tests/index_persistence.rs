//! Counter-asserted tests for column-index persistence (PR 8): indexes built
//! during a join are cached on the relation under **stable column names**, so
//! repeated joins, renamed aliases, later fixpoint rounds, and re-queries
//! after unrelated commits all reuse them instead of rebuilding.
//!
//! The build/reuse counters ([`column_index_counters`]) are thread-local and
//! the Rust test harness runs every `#[test]` on its own thread, so each test
//! observes only its own index traffic; all evaluation below runs at one
//! worker thread to stay on the counting thread.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{column_index_counters, GenTuple, Instance, Relation};
use frdb_core::schema::Schema;
use frdb_datalog::transitive_closure_program;
use frdb_db::Database;
use frdb_num::Rat;

/// A generalized tuple pinning two columns to closed boxes:
/// `lo.0 ≤ x ≤ hi.0 ∧ lo.1 ≤ y ≤ hi.1` over the given variable names.
fn boxed(vars: (&str, &str), x: (i64, i64), y: (i64, i64)) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::le(Term::cst(x.0), Term::var(vars.0)),
        DenseAtom::le(Term::var(vars.0), Term::cst(x.1)),
        DenseAtom::le(Term::cst(y.0), Term::var(vars.1)),
        DenseAtom::le(Term::var(vars.1), Term::cst(y.1)),
    ])
}

/// A binary relation of `n` boxes over columns `(a, b)`, spaced so each box
/// carries a nondegenerate envelope on both columns (the index-eligible case).
fn box_relation(a: &str, b: &str, n: i64, offset: i64) -> Relation<DenseOrder> {
    let tuples = (0..n)
        .map(|i| boxed((a, b), (4 * i + offset, 4 * i + offset + 2), (0, 2 * n)))
        .collect();
    Relation::new(vec![Var::new(a), Var::new(b)], tuples)
}

#[test]
fn repeated_joins_reuse_the_cached_column_index() {
    let a = box_relation("x", "y", 8, 0);
    let b = box_relation("y", "z", 8, 1);

    let (b0, _) = column_index_counters();
    let first = a.join_with(&b, 1);
    let (b1, r1) = column_index_counters();
    assert!(b1 > b0, "the first join must build the right-side index");

    let second = a.join_with(&b, 1);
    let (b2, r2) = column_index_counters();
    assert_eq!(
        b2, b1,
        "the second join over the same relations must rebuild nothing"
    );
    assert!(r2 > r1, "the second join must reuse the cached index");
    assert_eq!(first.to_dnf(), second.to_dnf());

    // Renaming is how rule bodies and query plans address stored relations
    // under fresh variable names; the alias shares the original's index cache
    // under stable column names, so the join still rebuilds nothing.
    let a_alias = a.rename(vec![Var::new("u"), Var::new("v")]);
    let b_alias = b.rename(vec![Var::new("v"), Var::new("w")]);
    let (b3, r3) = column_index_counters();
    let aliased = a_alias.join_with(&b_alias, 1);
    let (b4, r4) = column_index_counters();
    assert_eq!(
        b4, b3,
        "a renamed alias must reuse the index, not rebuild it"
    );
    assert!(r4 > r3, "the aliased join must count as index reuse");
    assert_eq!(aliased.num_tuples(), first.num_tuples());
}

/// The interval-chain EDB: `edge = ⋃_i {(x, y) | 3i ≤ x ≤ 3i+1 ∧ 3(i+1) ≤ y ≤
/// 3(i+1)+1}`.  Boxes chain one step per round (tuple `i`'s `y` envelope meets
/// only tuple `i+1`'s `x` envelope), so transitive closure takes `n`
/// productive rounds plus the quiescent one — and every tuple carries
/// nondegenerate envelopes, so the join's interval index actually engages.
fn interval_chain(n: i64) -> Instance<DenseOrder> {
    let tuples = (0..n)
        .map(|i| {
            boxed(
                ("x", "y"),
                (3 * i, 3 * i + 1),
                (3 * (i + 1), 3 * (i + 1) + 1),
            )
        })
        .collect();
    let mut inst = Instance::new(Schema::from_pairs([("edge", 2)]));
    inst.set(
        "edge",
        Relation::new(vec![Var::new("x"), Var::new("y")], tuples),
    )
    .unwrap();
    inst
}

#[test]
fn fixpoint_rounds_rebuild_zero_indexes_on_the_unchanged_edb() {
    // Run transitive closure over two chain lengths.  The longer chain takes
    // strictly more rounds, each re-joining the *same* EDB relation — so the
    // number of index builds must not grow with the round count, while the
    // number of reuses must.
    let program = transitive_closure_program("edge", "tc");
    let mut iterations = Vec::new();
    let mut builds = Vec::new();
    let mut reuses = Vec::new();
    for n in [3i64, 7] {
        let inst = interval_chain(n);
        let (b0, r0) = column_index_counters();
        let run = program.run(&inst).unwrap();
        let (b1, r1) = column_index_counters();
        iterations.push(run.iterations);
        builds.push(b1 - b0);
        reuses.push(r1 - r0);
    }
    assert!(
        iterations[1] > iterations[0],
        "the longer chain must take more fixpoint rounds ({} vs {})",
        iterations[1],
        iterations[0]
    );
    assert_eq!(
        builds[0], builds[1],
        "extra fixpoint rounds re-joining the unchanged EDB must rebuild zero indexes"
    );
    assert!(
        reuses[1] > reuses[0],
        "later rounds must reuse the EDB index built in the first joining round"
    );
}

#[test]
fn unrelated_commits_rebuild_zero_indexes_on_requery() {
    let db: Database<DenseOrder> = Database::new();
    db.declare("parcels", 2).unwrap();
    db.declare("zones", 2).unwrap();
    db.declare("audit", 1).unwrap();
    db.set_relation("parcels", box_relation("x", "y", 6, 0))
        .unwrap();
    db.set_relation("zones", box_relation("x", "y", 6, 1))
        .unwrap();
    let rel = |name: &str| Formula::<DenseAtom>::rel(name, [Term::var("x"), Term::var("y")]);
    db.define_query(
        "overlap",
        vec![Var::new("x"), Var::new("y")],
        Formula::And(vec![rel("parcels"), rel("zones")]),
    )
    .unwrap();

    // Warm run: builds the join's column indexes and caches them on the
    // stored relations.
    let warm = db.snapshot().eval_query("overlap").unwrap();
    let (b1, r1) = column_index_counters();
    assert!(b1 > 0, "the warm run must build at least one column index");

    // A commit touching only an unrelated relation: the stored `parcels` and
    // `zones` values (and their index caches) ride into the new generation
    // untouched, so the re-query rebuilds nothing.
    db.set_relation(
        "audit",
        Relation::from_points(vec![Var::new("t")], vec![vec![Rat::from_i64(1)]]),
    )
    .unwrap();
    let again = db.snapshot().eval_query("overlap").unwrap();
    let (b2, r2) = column_index_counters();
    assert_eq!(
        b2, b1,
        "re-querying after an unrelated commit must rebuild zero indexes"
    );
    assert!(r2 > r1, "the re-query must reuse the warm run's indexes");
    assert_eq!(warm.to_dnf(), again.to_dnf());
}
