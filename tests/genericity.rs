//! Integration test for experiment E1 and Propositions 4.9/4.10 / Theorem 6.1:
//! constant-free FO and DATALOG¬ queries are order-generic, and the Example 4.5
//! queries are not.

use frdb::prelude::*;
use frdb_core::generic::{boolean_commutes_with, commutes_with};
use frdb_queries::connectivity::is_connected;
use frdb_queries::separation::{example_4_5_instance, line_separation};
use frdb_queries::workload::{random_region2, single_relation_instance};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn example_4_5_line_separation_is_not_order_generic() {
    let relation = example_4_5_instance();
    let mu = Automorphism::example_4_5();
    let before = line_separation(&relation).unwrap();
    let after = line_separation(&mu.apply_relation(&relation)).unwrap();
    assert!(!before);
    assert!(after);
    assert_ne!(before, after, "Fig. 1: the answer must flip under µ");
}

#[test]
fn constant_free_fo_queries_commute_with_random_automorphisms() {
    let mut rng = StdRng::seed_from_u64(2024);
    let query = |inst: &Instance<DenseOrder>| {
        // {(x, y) | R(x, y) ∧ ∃z (R(x, z) ∧ y < z)}  — constant-free, hence generic.
        let f: Formula<DenseAtom> =
            Formula::rel("R", [Term::var("x"), Term::var("y")]).and(Formula::exists(
                ["z"],
                Formula::rel("R", [Term::var("x"), Term::var("z")])
                    .and(Formula::Atom(DenseAtom::lt(Term::var("y"), Term::var("z")))),
            ));
        eval_query(&f, &[Var::new("x"), Var::new("y")], inst).unwrap()
    };
    for _ in 0..3 {
        let region = random_region2(&mut rng, 4, 30);
        let inst = single_relation_instance("R", region);
        for _ in 0..3 {
            let mu = Automorphism::random(&mut rng, 3, 40);
            assert!(
                commutes_with(&query, &inst, &mu),
                "Proposition 4.10 violated"
            );
        }
    }
}

#[test]
fn topological_queries_are_order_generic_boolean_queries() {
    // Theorem 6.1 / the catalog: connectivity commutes with automorphisms.
    let mut rng = StdRng::seed_from_u64(7);
    let query = |inst: &Instance<DenseOrder>| is_connected(&inst.get(&RelName::new("R")).unwrap());
    for _ in 0..3 {
        let region = random_region2(&mut rng, 5, 40);
        let inst = single_relation_instance("R", region);
        for _ in 0..3 {
            let mu = Automorphism::random(&mut rng, 4, 60);
            assert!(boolean_commutes_with(&query, &inst, &mu));
        }
    }
    // And specifically with the Example 4.5 automorphism on the Example 4.5 instance,
    // in contrast to line separation.
    let inst = single_relation_instance("R", example_4_5_instance());
    assert!(boolean_commutes_with(
        &query,
        &inst,
        &Automorphism::example_4_5()
    ));
}
