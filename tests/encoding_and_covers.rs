//! Integration + property tests for experiment E9: covers (Definition 6.9, Lemma
//! 6.10) and the finite relational encoding of Section 6 (Example 6.11) round-trip on
//! random regions, and the standard encoding of §4.2 grows with the representation.

use frdb::prelude::*;
use frdb_core::encode::{database_size, decode_relation_cover, encode_relation_cover, AdomMap};
use frdb_core::normal::{cover, nonredundant_cover};
use frdb_queries::workload::{random_intervals, random_region2, single_relation_instance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn covers_are_equivalent_and_nonredundant_on_random_regions() {
    let mut rng = StdRng::seed_from_u64(99);
    for n in [2usize, 4, 6] {
        let rel = random_region2(&mut rng, n, 20);
        let c = nonredundant_cover(&rel);
        let rebuilt = Relation::<DenseOrder>::from_dnf(
            rel.vars().to_vec(),
            c.iter().map(|t| t.to_conj()).collect(),
        );
        assert!(
            rebuilt.equivalent(&rel),
            "cover must be equivalent to the relation"
        );
        for i in 0..c.len() {
            let mut rest = c.clone();
            rest.remove(i);
            let partial = Relation::<DenseOrder>::from_dnf(
                rel.vars().to_vec(),
                rest.iter().map(|t| t.to_conj()).collect(),
            );
            assert!(!partial.equivalent(&rel), "cover must be non-redundant");
        }
    }
}

#[test]
fn relational_encoding_roundtrip_on_random_regions() {
    let mut rng = StdRng::seed_from_u64(5);
    for n in [1usize, 3, 5] {
        let rel = random_region2(&mut rng, n, 15);
        let rows = encode_relation_cover(&rel);
        let back = decode_relation_cover(rel.vars(), &rows).unwrap();
        assert!(back.equivalent(&rel), "encode/decode must round-trip");
        // Lemma 6.10: the number of encoded tuples is polynomial in the number of
        // constraints (here: comfortably bounded by a quadratic).
        let constraints = rel.num_atoms().max(1);
        assert!(rows.len() <= 4 * constraints * constraints + 4);
    }
}

#[test]
fn adom_map_commutes_with_equivalence() {
    let mut rng = StdRng::seed_from_u64(17);
    let rel = random_intervals(&mut rng, 5, 50);
    let inst = single_relation_instance("R", rel);
    let map = AdomMap::for_instance(&inst);
    assert!(map.is_order_preserving());
    let image = map.apply_instance(&inst);
    // The image has the same component structure (it is an order-isomorphic copy).
    let orig_pieces = frdb_core::normal::decompose_1d(&inst.get(&RelName::new("R")).unwrap()).len();
    let image_pieces =
        frdb_core::normal::decompose_1d(&image.get(&RelName::new("R")).unwrap()).len();
    assert_eq!(orig_pieces, image_pieces);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The §4.2 size measure is positive and monotone under union with fresh material.
    #[test]
    fn database_size_is_monotone(seed in 0u64..1000, n in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let small = random_intervals(&mut rng, n, 40);
        let extra = random_intervals(&mut rng, n, 40).map_constants(&|c| c + &Rat::from_i64(1000));
        let large = small.union(&extra.rename(small.vars().to_vec()));
        let inst_small = single_relation_instance("R", small);
        let inst_large = single_relation_instance("R", large);
        prop_assert!(database_size(&inst_small).unwrap() > 0);
        prop_assert!(database_size(&inst_large).unwrap() >= database_size(&inst_small).unwrap());
    }

    /// Covers of random monadic relations reproduce membership exactly.
    #[test]
    fn cover_preserves_membership(seed in 0u64..1000, n in 1usize..6, probe in -10i64..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rel = random_intervals(&mut rng, n, 50);
        let c = cover(&rel);
        let rebuilt = Relation::<DenseOrder>::from_dnf(
            rel.vars().to_vec(),
            c.iter().map(|t| t.to_conj()).collect(),
        );
        let p = Rat::from_i64(probe);
        prop_assert_eq!(rel.contains(std::slice::from_ref(&p)), rebuilt.contains(&[p]));
    }
}
