//! Property tests for experiments E3–E6: the reductions of Figs. 3–6 are correct on
//! arbitrary Boolean vectors — the reduction output, fed to the direct query
//! algorithms, returns exactly the Boolean function value.

use frdb_queries::connectivity::{has_hole, is_connected};
use frdb_queries::euler::euler_traversal;
use frdb_queries::reductions::{
    half, half_to_euler, half_to_homeomorphism, majority, majority_to_connectivity,
    majority_to_holes, parity, parity_to_connectivity_3d,
};
use frdb_queries::shape1d::homeomorphic_1d;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn majority_reduction_to_connectivity(bits in proptest::collection::vec(any::<bool>(), 1..7)) {
        let region = majority_to_connectivity(&bits);
        prop_assert_eq!(is_connected(&region), majority(&bits));
    }

    #[test]
    fn majority_reduction_to_holes(bits in proptest::collection::vec(any::<bool>(), 1..5)) {
        // Hole counting goes through the complement of the figure, the most expensive
        // operation in the engine, so the vectors are kept short here; the unit tests
        // and the benchmark harness cover larger instances.
        let region = majority_to_holes(&bits);
        prop_assert_eq!(has_hole(&region), majority(&bits));
    }

    #[test]
    fn parity_reduction_to_3d_connectivity(bits in proptest::collection::vec(any::<bool>(), 0..6)) {
        let region = parity_to_connectivity_3d(&bits);
        prop_assert_eq!(is_connected(&region), parity(&bits));
    }

    #[test]
    fn half_reduction_to_euler(bits in proptest::collection::vec(any::<bool>(), 1..7)) {
        let segments = half_to_euler(&bits);
        prop_assert_eq!(euler_traversal(&segments), half(&bits));
    }

    #[test]
    fn half_reduction_to_homeomorphism(bits in proptest::collection::vec(any::<bool>(), 0..8)) {
        let (r1, r2) = half_to_homeomorphism(&bits);
        prop_assert_eq!(homeomorphic_1d(&r1, &r2), half(&bits));
    }
}
