//! Integration test for experiment E8 (Fig. 8): the query catalog gives consistent
//! answers across its three implementations — direct algorithms, FO sentences and
//! DATALOG¬ programs — on representative instances.

use frdb::prelude::*;
use frdb_core::fo::eval_sentence;
use frdb_datalog::transitive_closure_program;
use frdb_queries::connectivity::{component_count, is_connected};
use frdb_queries::convexity::{is_convex, is_convex_1d};
use frdb_queries::graph::{graph_connected, integer_set, parity, path_graph, transitive_closure};
use frdb_queries::programs::region_connected_datalog;
use frdb_queries::shape1d::{connectivity_1d_sentence, is_connected_1d};

fn seg1(lo: i64, hi: i64) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::le(Term::cst(lo), Term::var("x")),
        DenseAtom::le(Term::var("x"), Term::cst(hi)),
    ])
}

fn rect(x0: i64, x1: i64, y0: i64, y1: i64) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::le(Term::cst(x0), Term::var("x")),
        DenseAtom::le(Term::var("x"), Term::cst(x1)),
        DenseAtom::le(Term::cst(y0), Term::var("y")),
        DenseAtom::le(Term::var("y"), Term::cst(y1)),
    ])
}

#[test]
fn one_dimensional_queries_agree_between_fo_and_direct() {
    let schema = Schema::from_pairs([("R", 1)]);
    let cases = vec![
        (
            Relation::<DenseOrder>::new(vec![Var::new("x")], vec![seg1(0, 5), seg1(3, 9)]),
            true,
        ),
        (
            Relation::new(vec![Var::new("x")], vec![seg1(0, 1), seg1(4, 5)]),
            false,
        ),
        (Relation::empty(vec![Var::new("x")]), true),
    ];
    for (relation, expected) in cases {
        assert_eq!(is_connected_1d(&relation), expected);
        assert_eq!(is_convex_1d(&relation), expected);
        assert_eq!(is_connected(&relation), expected);
        let mut inst = Instance::new(schema.clone());
        inst.set("R", relation).unwrap();
        assert_eq!(
            eval_sentence(&connectivity_1d_sentence("R"), &inst).unwrap(),
            expected
        );
    }
}

#[test]
fn two_dimensional_connectivity_direct_vs_datalog() {
    let vars = vec![Var::new("x"), Var::new("y")];
    let connected = Relation::<DenseOrder>::new(vars.clone(), vec![rect(0, 2, 0, 2)]);
    let split = Relation::new(vars, vec![rect(0, 1, 0, 1), rect(4, 5, 4, 5)]);
    assert!(is_connected(&connected));
    assert!(!is_connected(&split));
    assert_eq!(component_count(&split), 2);
    assert!(region_connected_datalog(&connected).unwrap());
    assert!(!region_connected_datalog(&split).unwrap());
}

#[test]
fn transitive_closure_three_ways() {
    // Direct algorithm, DATALOG¬ program and the FO-undefinability side condition
    // (we only check the two computable routes agree).
    let edges = path_graph(6);
    let direct = transitive_closure(&edges).unwrap();
    let mut inst = Instance::new(Schema::from_pairs([("edge", 2)]));
    inst.set("edge", edges.clone()).unwrap();
    let tc = transitive_closure_program("edge", "tc")
        .run_for(&inst, &RelName::new("tc"))
        .unwrap();
    for i in 1..=6i64 {
        for j in 1..=6i64 {
            let expected = i < j;
            assert_eq!(
                direct.contains(&(Rat::from_i64(i), Rat::from_i64(j))),
                expected
            );
            assert_eq!(tc.contains(&[Rat::from_i64(i), Rat::from_i64(j)]), expected);
        }
    }
    assert!(graph_connected(&edges).unwrap());
}

#[test]
fn parity_and_convexity_catalog_entries() {
    assert!(parity(&integer_set(4)).unwrap());
    assert!(!parity(&integer_set(5)).unwrap());
    // 2-D convexity through the linear engine on a triangle and a split region.
    let vars = vec![Var::new("x"), Var::new("y")];
    let triangle = Relation::<DenseOrder>::new(
        vars.clone(),
        vec![GenTuple::new(vec![
            DenseAtom::le(Term::cst(0), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::var("y")),
            DenseAtom::le(Term::var("y"), Term::cst(4)),
        ])],
    );
    assert!(is_convex(&triangle).unwrap());
    let split = Relation::new(vars, vec![rect(0, 1, 0, 1), rect(5, 6, 5, 6)]);
    assert!(!is_convex(&split).unwrap());
}
